//! Criterion wrappers around the per-figure experiment pipelines (small
//! configurations): one benchmark per table/figure of the paper, so
//! `cargo bench` exercises every harness end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use nvmm_bench::{normalized_runtime, normalized_throughput, normalized_write_traffic};
use nvmm_sim::config::{Design, SimConfig};
use nvmm_sim::system::{CrashSpec, System};
use nvmm_workloads::{traces_for_cores, WorkloadKind, WorkloadSpec};
use std::hint::black_box;

fn small(kind: WorkloadKind) -> WorkloadSpec {
    WorkloadSpec::evaluation_default(kind).with_ops(40)
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_runtime");
    g.sample_size(10);
    g.bench_function("sca_vs_noenc_hash", |b| {
        b.iter(|| {
            normalized_runtime(
                black_box(&small(WorkloadKind::HashTable)),
                Design::Sca,
                Design::NoEncryption,
            )
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_throughput");
    g.sample_size(10);
    g.bench_function("sca_4core_queue", |b| {
        b.iter(|| normalized_throughput(black_box(&small(WorkloadKind::Queue)), Design::Sca, 4))
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_traffic");
    g.sample_size(10);
    g.bench_function("fca_vs_noenc_btree", |b| {
        b.iter(|| normalized_write_traffic(black_box(&small(WorkloadKind::BTree)), Design::Fca))
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_counter_cache");
    g.sample_size(10);
    let spec = small(WorkloadKind::ArraySwap).with_footprint(32 << 20);
    let traces = traces_for_cores(&spec, 1);
    g.bench_function("sca_512kb_cache", |b| {
        b.iter(|| {
            let cfg = SimConfig::single_core(Design::Sca).with_counter_cache_bytes(512 << 10);
            System::new(cfg, black_box(traces.clone())).run(CrashSpec::None)
        })
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_tx_size");
    g.sample_size(10);
    g.bench_function("sca_16line_tx", |b| {
        b.iter(|| {
            normalized_runtime(
                black_box(&small(WorkloadKind::Queue).with_payload_lines(16)),
                Design::Sca,
                Design::Ideal,
            )
        })
    });
    g.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_latency");
    g.sample_size(10);
    let spec = small(WorkloadKind::BTree);
    let traces = traces_for_cores(&spec, 1);
    g.bench_function("sca_fast_reads", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::single_core(Design::Sca);
            cfg.pcm = cfg.pcm.scale_read(0.25);
            System::new(cfg, black_box(traces.clone())).run(CrashSpec::None)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17
);
criterion_main!(benches);
