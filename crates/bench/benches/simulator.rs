//! Criterion benchmarks for the memory-system simulator itself: how fast
//! the trace-replay engine executes per design, and the cost of crash
//! recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvmm_core::recovery::{recover_undo_log, RecoveredMemory};
use nvmm_sim::config::{Design, SimConfig};
use nvmm_sim::system::{CrashSpec, System};
use nvmm_workloads::{execute, traces_for_cores, WorkloadKind, WorkloadSpec};
use std::hint::black_box;

fn bench_replay(c: &mut Criterion) {
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(50);
    let traces = traces_for_cores(&spec, 1);
    let events = traces[0].len() as u64;
    let mut g = c.benchmark_group("replay");
    g.throughput(Throughput::Elements(events));
    g.sample_size(20);
    for design in [
        Design::NoEncryption,
        Design::Sca,
        Design::Fca,
        Design::CoLocated,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(design.label()),
            &design,
            |b, &design| {
                b.iter(|| {
                    let cfg = SimConfig::single_core(design);
                    System::new(cfg, black_box(traces.clone())).run(CrashSpec::None)
                })
            },
        );
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(20);
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(50);
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &spec,
            |b, spec| b.iter(|| traces_for_cores(black_box(spec), 1)),
        );
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(30);
    let ex = execute(&spec, 0, spec.ops);
    let trace = ex.pm.trace().clone();
    let cfg = SimConfig::single_core(Design::Sca);
    let key = cfg.key;
    let out = System::new(cfg, vec![trace]).run(CrashSpec::AfterEvent(500));
    let mut g = c.benchmark_group("recovery");
    g.sample_size(30);
    g.bench_function("decrypt_and_rollback", |b| {
        b.iter(|| {
            let mut mem = RecoveredMemory::new(out.image.clone(), key);
            recover_undo_log(black_box(&mut mem), &ex.log)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_replay,
    bench_trace_generation,
    bench_recovery
);
criterion_main!(benches);
