//! Red-Black Tree: inserts random values into a persistent red-black
//! tree (§6.2).
//!
//! Nodes have no parent pointers; insertion keeps an explicit ancestor
//! stack and runs the classic recolor/rotate fixup against it. Every
//! node a fixup can modify is either on the descent path, a sibling of a
//! path node (the "uncle" in recoloring), or the freshly allocated node —
//! so a read-only pre-pass over the descent path yields a sound undo-log
//! set for the transaction's prepare stage.
//!
//! Node layout (1 cache line): `key | color | left | right | value`
//! (five u64 words; color 0 = black, 1 = red; index 0 = nil, black).

use crate::spec::WorkloadSpec;
use crate::util::{ensure, ConsistencyError, Scaffold};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::txn::Txn;
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::{ByteAddr, LINE_BYTES};
use rand::Rng;

const BLACK: u64 = 0;
const RED: u64 = 1;

const OFF_KEY: u64 = 0;
const OFF_COLOR: u64 = 8;
const OFF_LEFT: u64 = 16;
const OFF_RIGHT: u64 = 24;
const OFF_VALUE: u64 = 32;

/// Addresses of the red-black-tree structure.
#[derive(Debug, Clone, Copy)]
pub struct RbLayout {
    /// Metadata line: root index at +0, pool cursor at +8.
    pub meta: ByteAddr,
    /// Node pool base (one line per node; index 0 = nil).
    pub pool: ByteAddr,
    /// Pool capacity in nodes.
    pub pool_nodes: u64,
}

impl RbLayout {
    /// Root-index cell.
    pub fn root_addr(&self) -> ByteAddr {
        self.meta
    }

    /// Pool-cursor cell.
    pub fn cursor_addr(&self) -> ByteAddr {
        ByteAddr(self.meta.0 + 8)
    }

    /// Address of node `i`.
    pub fn node(&self, i: u64) -> ByteAddr {
        ByteAddr(self.pool.0 + i * LINE_BYTES)
    }

    fn field(&self, i: u64, off: u64) -> ByteAddr {
        ByteAddr(self.node(i).0 + off)
    }
}

/// Minimal memory interface shared by the transaction and the checker.
trait Mem {
    fn load(&mut self, a: ByteAddr) -> u64;
}

impl Mem for Txn<'_> {
    fn load(&mut self, a: ByteAddr) -> u64 {
        self.read_u64(a)
    }
}

impl Mem for RecoveredMemory {
    fn load(&mut self, a: ByteAddr) -> u64 {
        self.read_u64(a)
    }
}

impl Mem for Pmem {
    fn load(&mut self, a: ByteAddr) -> u64 {
        let mut b = [0u8; 8];
        self.peek(a, &mut b);
        u64::from_le_bytes(b)
    }
}

fn key<M: Mem>(m: &mut M, l: &RbLayout, i: u64) -> u64 {
    m.load(l.field(i, OFF_KEY))
}
fn color<M: Mem>(m: &mut M, l: &RbLayout, i: u64) -> u64 {
    if i == 0 {
        BLACK
    } else {
        m.load(l.field(i, OFF_COLOR))
    }
}
fn left<M: Mem>(m: &mut M, l: &RbLayout, i: u64) -> u64 {
    m.load(l.field(i, OFF_LEFT))
}
fn right<M: Mem>(m: &mut M, l: &RbLayout, i: u64) -> u64 {
    m.load(l.field(i, OFF_RIGHT))
}

fn set_color(tx: &mut Txn<'_>, l: &RbLayout, i: u64, c: u64) {
    tx.write_u64(l.field(i, OFF_COLOR), c);
}
fn set_left(tx: &mut Txn<'_>, l: &RbLayout, i: u64, v: u64) {
    tx.write_u64(l.field(i, OFF_LEFT), v);
}
fn set_right(tx: &mut Txn<'_>, l: &RbLayout, i: u64, v: u64) {
    tx.write_u64(l.field(i, OFF_RIGHT), v);
}

/// Replaces `old_child` of `parent` (or the root cell when `parent` is
/// nil) with `new_child`.
fn replace_child(tx: &mut Txn<'_>, l: &RbLayout, parent: u64, old_child: u64, new_child: u64) {
    if parent == 0 {
        tx.write_u64(l.root_addr(), new_child);
    } else if left(tx, l, parent) == old_child {
        set_left(tx, l, parent, new_child);
    } else {
        set_right(tx, l, parent, new_child);
    }
}

/// Left-rotates around `x` (whose right child `y` moves up). `parent` is
/// `x`'s parent (0 = root). Returns `y`.
fn rotate_left(tx: &mut Txn<'_>, l: &RbLayout, x: u64, parent: u64) -> u64 {
    let y = right(tx, l, x);
    let t = left(tx, l, y);
    set_right(tx, l, x, t);
    set_left(tx, l, y, x);
    replace_child(tx, l, parent, x, y);
    y
}

/// Right-rotates around `x` (whose left child `y` moves up). Returns `y`.
fn rotate_right(tx: &mut Txn<'_>, l: &RbLayout, x: u64, parent: u64) -> u64 {
    let y = left(tx, l, x);
    let t = right(tx, l, y);
    set_left(tx, l, x, t);
    set_right(tx, l, y, x);
    replace_child(tx, l, parent, x, y);
    y
}

/// Read-only pre-pass: the descent path for `key` plus both children of
/// every path node — a superset of everything the insert fixup can
/// modify.
fn plan_insert(tx: &mut Txn<'_>, l: &RbLayout, k: u64) -> Vec<u64> {
    let mut touched = Vec::new();
    let mut idx = tx.load(l.root_addr());
    while idx != 0 {
        touched.push(idx);
        let (lc, rc) = (left(tx, l, idx), right(tx, l, idx));
        for c in [lc, rc] {
            if c != 0 {
                touched.push(c);
            }
        }
        idx = if k < key(tx, l, idx) { lc } else { rc };
    }
    touched.sort_unstable();
    touched.dedup();
    touched
}

fn alloc_node(tx: &mut Txn<'_>, l: &RbLayout) -> u64 {
    let idx = tx.load(l.cursor_addr());
    assert!(idx < l.pool_nodes, "red-black node pool exhausted");
    tx.write_u64(l.cursor_addr(), idx + 1);
    idx
}

/// BST insert + red-black fixup (mutate stage).
fn do_insert(tx: &mut Txn<'_>, l: &RbLayout, k: u64, value: u64) {
    // Descend, recording the ancestor stack.
    let mut stack: Vec<u64> = Vec::new();
    let mut idx = tx.load(l.root_addr());
    while idx != 0 {
        stack.push(idx);
        idx = if k < key(tx, l, idx) {
            left(tx, l, idx)
        } else {
            right(tx, l, idx)
        };
    }
    let z = alloc_node(tx, l);
    tx.write_u64(l.field(z, OFF_KEY), k);
    tx.write_u64(l.field(z, OFF_COLOR), RED);
    tx.write_u64(l.field(z, OFF_LEFT), 0);
    tx.write_u64(l.field(z, OFF_RIGHT), 0);
    tx.write_u64(l.field(z, OFF_VALUE), value);
    match stack.last() {
        None => {
            tx.write_u64(l.root_addr(), z);
            set_color(tx, l, z, BLACK);
            return;
        }
        Some(&p) => {
            if k < key(tx, l, p) {
                set_left(tx, l, p, z);
            } else {
                set_right(tx, l, p, z);
            }
        }
    }

    // Fixup. `stack` holds the ancestors of `cur` (top = parent).
    let mut cur = z;
    loop {
        let Some(&parent) = stack.last() else {
            set_color(tx, l, cur, BLACK);
            return;
        };
        if color(tx, l, parent) == BLACK {
            return;
        }
        // Parent is red, so a grandparent exists (root is black).
        let grand = stack[stack.len() - 2];
        let great = if stack.len() >= 3 {
            stack[stack.len() - 3]
        } else {
            0
        };
        let parent_is_left = left(tx, l, grand) == parent;
        let uncle = if parent_is_left {
            right(tx, l, grand)
        } else {
            left(tx, l, grand)
        };
        if color(tx, l, uncle) == RED {
            set_color(tx, l, parent, BLACK);
            set_color(tx, l, uncle, BLACK);
            set_color(tx, l, grand, RED);
            stack.pop();
            stack.pop();
            cur = grand;
            continue;
        }
        // Rotations.
        let cur_is_left = left(tx, l, parent) == cur;
        if parent_is_left {
            let pivot = if cur_is_left {
                parent
            } else {
                rotate_left(tx, l, parent, grand);
                cur
            };
            set_color(tx, l, pivot, BLACK);
            set_color(tx, l, grand, RED);
            rotate_right(tx, l, grand, great);
        } else {
            let pivot = if cur_is_left {
                rotate_right(tx, l, parent, grand);
                cur
            } else {
                parent
            };
            set_color(tx, l, pivot, BLACK);
            set_color(tx, l, grand, RED);
            rotate_left(tx, l, grand, great);
        }
        return;
    }
}

/// Executes `ops` insert transactions for `core`.
pub fn execute(
    spec: &WorkloadSpec,
    core: usize,
    ops: usize,
) -> (Pmem, UndoLog, ByteAddr, RbLayout, usize) {
    // Path + sibling logging: ~3 nodes per level, depth ≤ 2·log2(n).
    let depth_bound = 2 * (64 - (spec.ops as u64 + 2).leading_zeros() as u64) + 4;
    let mut s = Scaffold::new(spec, core, 3 * depth_bound + 4, LINE_BYTES);
    // Pool sized by the configured footprint so probe reads span it.
    let pool_nodes = (ops as u64 + 2).max(spec.footprint_bytes / LINE_BYTES);
    let meta = s.plan.alloc_lines(1);
    let pool = s.plan.alloc_lines(pool_nodes);
    let layout = RbLayout {
        meta,
        pool,
        pool_nodes,
    };

    s.pm.write_u64(layout.cursor_addr(), 1);
    s.pm.clwb(layout.cursor_addr(), 8);
    s.pm.counter_cache_writeback(layout.cursor_addr(), 8);
    s.pm.persist_barrier();

    // Full-width random keys: collisions are negligible and keep the
    // BST-order check exact. The footprint is set by the node pool.
    let _ = spec.footprint_bytes;
    // Everything up to here is setup, persisted before the measured ops.
    let setup_events = s.pm.trace().len();
    for op in 0..ops as u64 {
        let k = s.rng.gen_range(1..u64::MAX);
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(op), s.payload_bytes);
        let mut tx = s.begin_tx(op);
        tx.log_region(layout.meta, 16);
        for idx in plan_insert(&mut tx, &layout, k) {
            tx.log_region(layout.node(idx), LINE_BYTES as usize);
        }
        do_insert(&mut tx, &layout, k, op + 1);
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, op);
        tx.commit();
        s.pm.compute(3500);
        s.probe_reads(
            layout.pool,
            layout.pool_nodes * LINE_BYTES,
            spec.read_probes,
        );
    }
    (s.pm, s.log, s.ops_cell, layout, setup_events)
}

fn walk<M: Mem>(
    m: &mut M,
    l: &RbLayout,
    idx: u64,
    lo: u64,
    hi: u64,
    depth: usize,
    count: &mut u64,
) -> Result<u64, ConsistencyError> {
    if idx == 0 {
        return Ok(1); // nil is black: black-height 1
    }
    ensure!(idx < l.pool_nodes, "node index {idx} out of pool");
    ensure!(depth < 128, "tree deeper than 128: cycle suspected");
    let k = key(m, l, idx);
    // Bounds are inclusive: duplicate keys route right on insert but may
    // migrate across rotations while preserving in-order adjacency.
    ensure!(
        k >= lo && k <= hi,
        "node {idx} key {k} violates BST order ({lo}..={hi})"
    );
    let c = color(m, l, idx);
    ensure!(c == RED || c == BLACK, "node {idx} has invalid color {c}");
    let (lc, rc) = (left(m, l, idx), right(m, l, idx));
    if c == RED {
        ensure!(
            color(m, l, lc) == BLACK && color(m, l, rc) == BLACK,
            "red node {idx} has a red child"
        );
    }
    *count += 1;
    let bh_l = walk(m, l, lc, lo, k, depth + 1, count)?;
    let bh_r = walk(m, l, rc, k, hi, depth + 1, count)?;
    ensure!(
        bh_l == bh_r,
        "node {idx}: black heights differ ({bh_l} vs {bh_r})"
    );
    Ok(bh_l + if c == BLACK { 1 } else { 0 })
}

/// Structural check: BST order, no red-red edges, uniform black height,
/// black root, and a node count equal to the committed insert count.
pub fn check(
    layout: &RbLayout,
    _spec: &WorkloadSpec,
    _core: usize,
    committed: u64,
    mem: &mut RecoveredMemory,
) -> Result<(), ConsistencyError> {
    let root = mem.read_u64(layout.root_addr());
    if committed == 0 {
        ensure!(root == 0, "empty tree must have null root");
        return Ok(());
    }
    ensure!(root != 0, "{committed} inserts but null root");
    ensure!(color(mem, layout, root) == BLACK, "root is red");
    let mut count = 0;
    walk(mem, layout, root, 0, u64::MAX, 0, &mut count)?;
    ensure!(
        count == committed,
        "tree holds {count} keys, expected {committed}"
    );
    let cursor = mem.read_u64(layout.cursor_addr());
    ensure!(
        cursor == committed + 1,
        "cursor {cursor} != committed {committed} + 1"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    fn functional_walk(pm: &mut Pmem, layout: &RbLayout) -> u64 {
        let root = pm.load(layout.root_addr());
        assert_eq!(color(pm, layout, root), BLACK, "root must be black");
        let mut count = 0;
        walk(pm, layout, root, 0, u64::MAX, 0, &mut count).expect("valid RB tree");
        count
    }

    #[test]
    fn inserts_build_valid_rb_tree() {
        let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(300);
        let (mut pm, _, ops_cell, layout, _) = execute(&spec, 0, spec.ops);
        assert_eq!(pm.read_u64(ops_cell), 300);
        assert_eq!(functional_walk(&mut pm, &layout), 300);
    }

    #[test]
    fn sequential_keys_stay_balanced() {
        // Deterministic adversarial pattern: the rng may not produce it,
        // so drive do_insert directly through transactions.
        let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(1);
        let mut s = Scaffold::new(&spec, 0, 64, LINE_BYTES);
        let meta = s.plan.alloc_lines(1);
        let pool = s.plan.alloc_lines(128);
        let layout = RbLayout {
            meta,
            pool,
            pool_nodes: 128,
        };
        s.pm.write_u64(layout.cursor_addr(), 1);
        for op in 0..100u64 {
            let mut tx = Txn::begin(&mut s.pm, &s.log, op, nvmm_core::txn::Mechanism::UndoLog);
            tx.log_region(layout.meta, 16);
            for idx in plan_insert(&mut tx, &layout, op + 1) {
                tx.log_region(layout.node(idx), LINE_BYTES as usize);
            }
            do_insert(&mut tx, &layout, op + 1, op + 1);
            tx.commit();
        }
        assert_eq!(functional_walk(&mut s.pm, &layout), 100);
    }

    #[test]
    fn reverse_sequential_keys_stay_balanced() {
        let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(1);
        let mut s = Scaffold::new(&spec, 0, 64, LINE_BYTES);
        let meta = s.plan.alloc_lines(1);
        let pool = s.plan.alloc_lines(128);
        let layout = RbLayout {
            meta,
            pool,
            pool_nodes: 128,
        };
        s.pm.write_u64(layout.cursor_addr(), 1);
        for op in 0..100u64 {
            let mut tx = Txn::begin(&mut s.pm, &s.log, op, nvmm_core::txn::Mechanism::UndoLog);
            tx.log_region(layout.meta, 16);
            for idx in plan_insert(&mut tx, &layout, 1000 - op) {
                tx.log_region(layout.node(idx), LINE_BYTES as usize);
            }
            do_insert(&mut tx, &layout, 1000 - op, op + 1);
            tx.commit();
        }
        assert_eq!(functional_walk(&mut s.pm, &layout), 100);
    }

    #[test]
    fn tree_height_is_logarithmic() {
        let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(500);
        let (mut pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        // Measure max depth by walking.
        fn depth(pm: &mut Pmem, l: &RbLayout, idx: u64) -> usize {
            if idx == 0 {
                return 0;
            }
            let (lc, rc) = (left(pm, l, idx), right(pm, l, idx));
            1 + depth(pm, l, lc).max(depth(pm, l, rc))
        }
        let root = pm.load(layout.root_addr());
        let d = depth(&mut pm, &layout, root);
        // RB bound: height <= 2*log2(n+1); for 500 keys that's ~18.
        assert!(d <= 18, "depth {d} exceeds the red-black bound");
    }
}
