//! # nvmm-workloads
//!
//! The five persistent data-structure workloads of the paper's §6.2 —
//! Array Swap, Queue, Hash Table, B-Tree, Red-Black Tree — implemented
//! over the `nvmm-core` transaction API with selective-counter-atomicity
//! annotations, plus the harness that replays them through the timing
//! simulator and the crash-consistency checking protocol.
//!
//! Each workload module provides:
//!
//! * `execute(spec, core, ops)` — deterministic functional execution
//!   producing a program-order trace (every transaction follows the
//!   three-stage prepare/mutate/commit protocol, undo-logging every
//!   region it mutates);
//! * a `Layout` describing where the structure lives; and
//! * `check(...)` — structural invariants validated against a recovered
//!   (post-crash) memory: multiset preservation for the array, FIFO
//!   windows for the queue, chain reachability for the hash table, BST
//!   order + balance for the B-tree, and the full red-black invariants
//!   for the RB-tree.
//!
//! The [`harness`] module adds the replay-equality check: recovery must
//! land on exactly the state after the last durably committed
//! transaction.
//!
//! # Examples
//!
//! ```
//! use nvmm_workloads::harness::{crash_check, run_timed};
//! use nvmm_workloads::spec::{WorkloadKind, WorkloadSpec};
//! use nvmm_sim::config::Design;
//! use nvmm_sim::system::CrashSpec;
//!
//! let spec = WorkloadSpec::smoke(WorkloadKind::Queue);
//!
//! // Timing run: how long does SCA take on one core?
//! let out = run_timed(&spec, Design::Sca, 1);
//! assert!(out.stats.runtime > nvmm_sim::Time::ZERO);
//!
//! // Crash run: recovery after an arbitrary mid-run power failure.
//! let outcome = crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(50)).unwrap();
//! assert!(outcome.committed <= spec.ops as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array_swap;
pub mod arrival;
pub mod btree;
pub mod harness;
pub mod hash_table;
pub mod queue;
pub mod rbtree;
pub mod spec;
mod util;

pub use arrival::{shape_open_loop, ArrivalCurve, ArrivalModel};
pub use harness::{
    check_crash_set, check_image, check_image_with, check_recovered_image, crash_check,
    crash_check_cfg, crash_instants, crash_instants_cfg, crash_sweep, execute, model_check,
    model_check_cfg, model_check_instants, model_check_instants_cfg, run_timed, traces_for_cores,
    CrashCheckOutcome, Executed, MinimalViolation, ModelCheckOpts, ModelCheckReport,
};
pub use spec::{WorkloadKind, WorkloadSpec};
pub use util::ConsistencyError;
