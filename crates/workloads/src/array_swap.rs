//! Array Swap: swaps random items in a persistent array (§6.2).
//!
//! The array spans the configured footprint. A hot prefix is initialized
//! with distinct non-zero values so that swaps are observable; each
//! transaction swaps one slot drawn from the whole array with one drawn
//! from the hot prefix, migrating values across the footprint and
//! exercising the counter cache with low-locality writes.

use crate::spec::WorkloadSpec;
use crate::util::{ensure, ConsistencyError, Scaffold};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::ByteAddr;
use rand::Rng;

/// Number of initialized hot slots.
const HOT_SLOTS: u64 = 512;

/// Addresses of the array-swap structure.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLayout {
    /// First slot (8-byte little-endian values, one per 8 bytes).
    pub base: ByteAddr,
    /// Total slot count.
    pub slots: u64,
}

impl ArrayLayout {
    /// Address of slot `i`.
    pub fn slot(&self, i: u64) -> ByteAddr {
        ByteAddr(self.base.0 + i * 8)
    }
}

/// Executes `ops` swap transactions for `core`.
pub fn execute(
    spec: &WorkloadSpec,
    core: usize,
    ops: usize,
) -> (Pmem, UndoLog, ByteAddr, ArrayLayout, usize) {
    let mut s = Scaffold::new(spec, core, 2, 8);
    let slots = (spec.footprint_bytes / 8).max(HOT_SLOTS * 2);
    let base = s.plan.alloc(slots * 8, 64);
    let layout = ArrayLayout { base, slots };

    // Initialize the hot prefix with distinct non-zero values, persisted
    // before the measured ops begin.
    for i in 0..HOT_SLOTS {
        s.pm.write_u64(layout.slot(i), i + 1);
    }
    s.pm.clwb(layout.slot(0), (HOT_SLOTS * 8) as usize);
    s.pm.counter_cache_writeback(layout.slot(0), (HOT_SLOTS * 8) as usize);
    s.pm.persist_barrier();

    // Everything up to here is setup, persisted before the measured ops.
    let setup_events = s.pm.trace().len();
    for op in 0..ops as u64 {
        let i = s.rng.gen_range(0..slots);
        let j = s.rng.gen_range(0..HOT_SLOTS);
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(op), s.payload_bytes);
        let mut tx = s.begin_tx(op);
        tx.log_region(layout.slot(i), 8);
        if j != i {
            tx.log_region(layout.slot(j), 8);
        }
        let vi = tx.read_u64(layout.slot(i));
        let vj = tx.read_u64(layout.slot(j));
        tx.write_u64(layout.slot(i), vj);
        tx.write_u64(layout.slot(j), vi);
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, op);
        tx.commit();
        s.pm.compute(3500);
        s.probe_reads(layout.base, layout.slots * 8, spec.read_probes);
    }
    (s.pm, s.log, s.ops_cell, layout, setup_events)
}

/// Structural check: the multiset of non-zero values across the array is
/// exactly `{1, …, HOT_SLOTS}` — swaps move values but never create or
/// destroy them.
///
/// Only the hot prefix and the slots the operation stream actually
/// touched are read (reading a multi-hundred-MB array post-crash would
/// be pointless); the harness's replay-equality check covers exact
/// placement.
pub fn check(
    layout: &ArrayLayout,
    spec: &WorkloadSpec,
    core: usize,
    committed: u64,
    mem: &mut RecoveredMemory,
) -> Result<(), ConsistencyError> {
    // Re-derive the touched far slots from the deterministic stream.
    let mut s = Scaffold::new(spec, core, 2, 8);
    let mut touched = std::collections::BTreeSet::new();
    let probe_lines = (layout.slots * 8 / 64).max(1);
    for _ in 0..committed {
        let i = s.rng.gen_range(0..layout.slots);
        let _j: u64 = s.rng.gen_range(0..HOT_SLOTS);
        touched.insert(i);
        // Keep the stream aligned with execute(): skip the probe draws.
        for _ in 0..spec.read_probes {
            let _: u64 = s.rng.gen_range(0..probe_lines);
        }
    }
    let mut nonzero = Vec::new();
    for i in (0..HOT_SLOTS).chain(touched.into_iter().filter(|&i| i >= HOT_SLOTS)) {
        let v = mem.read_u64(layout.slot(i));
        if v != 0 {
            nonzero.push(v);
        }
    }
    nonzero.sort_unstable();
    let expected: Vec<u64> = (1..=HOT_SLOTS).collect();
    ensure!(
        nonzero == expected,
        "array multiset violated: {} non-zero values, expected {}",
        nonzero.len(),
        HOT_SLOTS
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    #[test]
    fn execute_produces_trace_and_commits() {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let (pm, _, ops_cell, _, _) = execute(&spec, 0, spec.ops);
        let mut pm = pm;
        assert_eq!(pm.read_u64(ops_cell), spec.ops as u64);
        assert_eq!(pm.trace().tx_count(), spec.ops as u64);
    }

    #[test]
    fn swaps_preserve_multiset_functionally() {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let (pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        // Collect every non-zero slot value from the functional image.
        let mut vals = Vec::new();
        for i in 0..layout.slots {
            let mut b = [0u8; 8];
            pm.peek(layout.slot(i), &mut b);
            let v = u64::from_le_bytes(b);
            if v != 0 {
                vals.push(v);
            }
        }
        vals.sort_unstable();
        assert_eq!(vals, (1..=HOT_SLOTS).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let (pm1, ..) = execute(&spec, 0, spec.ops);
        let (pm2, ..) = execute(&spec, 0, spec.ops);
        assert_eq!(pm1.trace(), pm2.trace());
    }
}
