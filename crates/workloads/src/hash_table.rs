//! Hash Table: inserts random values into a persistent hash table
//! (§6.2).
//!
//! Open chaining: a bucket array of 8-byte head pointers plus a
//! bump-allocated node pool. Each node occupies one line:
//! `key (u64) | value (u64) | next (u64)`. An insert transaction logs the
//! bucket head and the pool cursor, writes the fresh node, links it in,
//! and bumps the cursor. Rolling back restores head and cursor; the
//! orphaned node line is simply dead space, exactly as in a real
//! persistent allocator.

use crate::spec::WorkloadSpec;
use crate::util::{ensure, ConsistencyError, Scaffold};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::{ByteAddr, LINE_BYTES};
use rand::Rng;

/// Addresses of the hash-table structure.
#[derive(Debug, Clone, Copy)]
pub struct HashLayout {
    /// Bucket array base: `buckets` 8-byte head pointers.
    pub buckets_base: ByteAddr,
    /// Number of buckets.
    pub buckets: u64,
    /// Node-pool cursor cell (next free node index, u64).
    pub cursor: ByteAddr,
    /// Node pool base (one line per node).
    pub pool: ByteAddr,
    /// Pool capacity in nodes.
    pub pool_nodes: u64,
}

impl HashLayout {
    /// Address of bucket `b`'s head pointer.
    pub fn bucket(&self, b: u64) -> ByteAddr {
        ByteAddr(self.buckets_base.0 + b * 8)
    }

    /// Address of node `i` (index into the pool; 0 is reserved as null).
    pub fn node(&self, i: u64) -> ByteAddr {
        ByteAddr(self.pool.0 + i * LINE_BYTES)
    }

    /// The bucket a key hashes to.
    pub fn bucket_of(&self, key: u64) -> u64 {
        // Fibonacci hashing: cheap and well-spread.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.buckets
    }
}

/// Executes `ops` insert transactions for `core`.
pub fn execute(
    spec: &WorkloadSpec,
    core: usize,
    ops: usize,
) -> (Pmem, UndoLog, ByteAddr, HashLayout, usize) {
    let mut s = Scaffold::new(spec, core, 3, LINE_BYTES);
    // Split the footprint: half buckets, half node pool.
    let buckets = (spec.footprint_bytes / 2 / 8).max(16);
    let pool_nodes = (spec.ops as u64 + 2).max(16);
    let buckets_base = s.plan.alloc(buckets * 8, 64);
    let cursor = s.plan.alloc_lines(1);
    let pool = s.plan.alloc_lines(pool_nodes);
    let layout = HashLayout {
        buckets_base,
        buckets,
        cursor,
        pool,
        pool_nodes,
    };

    // Node index 0 is the null sentinel: start the cursor at 1.
    s.pm.write_u64(cursor, 1);
    s.pm.clwb(cursor, 8);
    s.pm.counter_cache_writeback(cursor, 8);
    s.pm.persist_barrier();

    // Everything up to here is setup, persisted before the measured ops.
    let setup_events = s.pm.trace().len();
    for op in 0..ops as u64 {
        let key: u64 = s.rng.gen_range(1..u64::MAX);
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(op), s.payload_bytes);
        let b = layout.bucket_of(key);
        let mut tx = s.begin_tx(op);
        tx.log_region(layout.bucket(b), 8);
        tx.log_region(layout.cursor, 8);
        let node_idx = tx.read_u64(layout.cursor);
        let old_head = tx.read_u64(layout.bucket(b));
        // Fresh node: key | value | next = old head.
        let node = layout.node(node_idx);
        tx.write_u64(node, key);
        tx.write_u64(ByteAddr(node.0 + 8), op + 1);
        tx.write_u64(ByteAddr(node.0 + 16), old_head);
        // Link in and bump the cursor.
        tx.write_u64(layout.bucket(b), node_idx);
        tx.write_u64(layout.cursor, node_idx + 1);
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, op);
        tx.commit();
        s.pm.compute(3500);
        s.probe_reads(layout.buckets_base, layout.buckets * 8, spec.read_probes);
    }
    (s.pm, s.log, s.ops_cell, layout, setup_events)
}

/// Structural check: exactly `committed` reachable nodes, chains
/// acyclic and in-pool, and every node hashes to the bucket its chain
/// hangs off.
pub fn check(
    layout: &HashLayout,
    spec: &WorkloadSpec,
    core: usize,
    committed: u64,
    mem: &mut RecoveredMemory,
) -> Result<(), ConsistencyError> {
    // Re-derive the inserted keys so only occupied buckets are read
    // (skipping the probe draws to stay stream-aligned with execute()).
    let mut s = Scaffold::new(spec, core, 3, LINE_BYTES);
    let probe_lines = (layout.buckets * 8 / 64).max(1);
    let keys: Vec<u64> = (0..committed)
        .map(|_| {
            let k = s.rng.gen_range(1..u64::MAX);
            for _ in 0..spec.read_probes {
                let _: u64 = s.rng.gen_range(0..probe_lines);
            }
            k
        })
        .collect();
    let cursor = mem.read_u64(layout.cursor);
    ensure!(
        cursor == committed + 1,
        "pool cursor {cursor} != committed {committed} + 1"
    );

    let mut reachable = 0u64;
    let mut seen = std::collections::HashSet::new();
    let mut buckets: Vec<u64> = keys.iter().map(|&k| layout.bucket_of(k)).collect();
    buckets.sort_unstable();
    buckets.dedup();
    for b in buckets {
        let mut idx = mem.read_u64(layout.bucket(b));
        while idx != 0 {
            ensure!(idx < layout.pool_nodes, "node index {idx} out of pool");
            ensure!(
                seen.insert((b, idx)),
                "cycle through node {idx} in bucket {b}"
            );
            let node = layout.node(idx);
            let key = mem.read_u64(node);
            ensure!(
                layout.bucket_of(key) == b,
                "node {idx} key {key} in wrong bucket {b}"
            );
            let value = mem.read_u64(ByteAddr(node.0 + 8));
            ensure!(
                value >= 1 && value <= committed,
                "node {idx} value {value} out of range"
            );
            reachable += 1;
            idx = mem.read_u64(ByteAddr(node.0 + 16));
        }
    }
    ensure!(
        reachable == committed,
        "{reachable} reachable nodes, expected {committed}"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    fn peek_u64(pm: &Pmem, a: ByteAddr) -> u64 {
        let mut b = [0u8; 8];
        pm.peek(a, &mut b);
        u64::from_le_bytes(b)
    }

    #[test]
    fn all_inserted_keys_are_findable() {
        let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(30);
        let (pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        // Recompute the key stream.
        let mut s = Scaffold::new(&spec, 0, 3, LINE_BYTES);
        let probe_lines = (layout.buckets * 8 / 64).max(1);
        for _ in 0..30 {
            let key: u64 = s.rng.gen_range(1..u64::MAX);
            for _ in 0..spec.read_probes {
                let _: u64 = s.rng.gen_range(0..probe_lines);
            }
            let b = layout.bucket_of(key);
            let mut idx = peek_u64(&pm, layout.bucket(b));
            let mut found = false;
            while idx != 0 {
                if peek_u64(&pm, layout.node(idx)) == key {
                    found = true;
                    break;
                }
                idx = peek_u64(&pm, ByteAddr(layout.node(idx).0 + 16));
            }
            assert!(found, "key {key} not reachable");
        }
    }

    #[test]
    fn cursor_counts_inserts() {
        let spec = WorkloadSpec::smoke(WorkloadKind::HashTable);
        let (pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        assert_eq!(peek_u64(&pm, layout.cursor), spec.ops as u64 + 1);
    }

    #[test]
    fn distinct_cores_use_distinct_keys() {
        let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(5);
        let (pm0, _, _, l0, _) = execute(&spec, 0, 5);
        let (pm1, _, _, l1, _) = execute(&spec, 1, 5);
        let k0 = peek_u64(&pm0, l0.node(1));
        let k1 = peek_u64(&pm1, l1.node(1));
        assert_ne!(k0, k1);
    }
}
