//! Queue: randomly en/dequeues items to/from a persistent queue (§6.2).
//!
//! A ring buffer of one-line slots with a metadata line holding the
//! (monotonic) head and tail cursors. Enqueue writes the item line and
//! bumps the tail; dequeue bumps the head. Both are single undo-logged
//! transactions.

use crate::spec::WorkloadSpec;
use crate::util::{ensure, ConsistencyError, Scaffold};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::{ByteAddr, LINE_BYTES};
use rand::Rng;

/// Addresses of the queue structure.
#[derive(Debug, Clone, Copy)]
pub struct QueueLayout {
    /// Metadata line: head (u64) at +0, tail (u64) at +8.
    pub meta: ByteAddr,
    /// First ring slot (one line per item).
    pub ring: ByteAddr,
    /// Ring capacity in slots.
    pub capacity: u64,
}

impl QueueLayout {
    /// Head cursor address.
    pub fn head_addr(&self) -> ByteAddr {
        self.meta
    }

    /// Tail cursor address.
    pub fn tail_addr(&self) -> ByteAddr {
        ByteAddr(self.meta.0 + 8)
    }

    /// Address of ring slot for monotonic index `i`.
    pub fn slot(&self, i: u64) -> ByteAddr {
        ByteAddr(self.ring.0 + (i % self.capacity) * LINE_BYTES)
    }
}

/// Executes `ops` random en/dequeue transactions for `core`.
pub fn execute(
    spec: &WorkloadSpec,
    core: usize,
    ops: usize,
) -> (Pmem, UndoLog, ByteAddr, QueueLayout, usize) {
    let mut s = Scaffold::new(spec, core, 2, LINE_BYTES);
    let capacity = (spec.footprint_bytes / LINE_BYTES).max(8);
    let meta = s.plan.alloc_lines(1);
    let ring = s.plan.alloc_lines(capacity);
    let layout = QueueLayout {
        meta,
        ring,
        capacity,
    };

    // Everything up to here is setup, persisted before the measured ops.
    let setup_events = s.pm.trace().len();
    for op in 0..ops as u64 {
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(op), s.payload_bytes);
        let want_dequeue: bool = s.rng.gen_bool(0.4);
        let mut tx = s.begin_tx(op);
        let head = tx.read_u64(layout.head_addr());
        let tail = tx.read_u64(layout.tail_addr());
        let size = tail - head;
        tx.log_region(layout.meta, 16);
        if (want_dequeue && size > 0) || size == layout.capacity {
            // Dequeue: read the item, advance head.
            let _item = tx.read_u64(layout.slot(head));
            tx.write_u64(layout.head_addr(), head + 1);
        } else {
            // Enqueue: the slot being filled is not part of the
            // consistent state until tail moves, but the slot may hold a
            // previously dequeued (stale) item that an aborted tx must
            // restore — log it.
            tx.log_region(layout.slot(tail), LINE_BYTES as usize);
            tx.write_u64(layout.slot(tail), op + 1);
            tx.write_u64(layout.tail_addr(), tail + 1);
        }
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, op);
        tx.commit();
        s.pm.compute(3500);
        s.probe_reads(layout.ring, layout.capacity * LINE_BYTES, spec.read_probes);
    }
    (s.pm, s.log, s.ops_cell, layout, setup_events)
}

/// Structural check: cursors sane, occupancy within capacity, and every
/// occupied slot holds a plausible (non-zero, in-range) item id.
pub fn check(
    layout: &QueueLayout,
    spec: &WorkloadSpec,
    _core: usize,
    committed: u64,
    mem: &mut RecoveredMemory,
) -> Result<(), ConsistencyError> {
    let head = mem.read_u64(layout.head_addr());
    let tail = mem.read_u64(layout.tail_addr());
    ensure!(head <= tail, "queue head {head} ahead of tail {tail}");
    ensure!(
        tail - head <= layout.capacity,
        "queue over capacity: {} > {}",
        tail - head,
        layout.capacity
    );
    ensure!(
        tail <= committed,
        "tail {tail} exceeds committed op count {committed}"
    );
    let _ = spec;
    for i in head..tail {
        let item = mem.read_u64(layout.slot(i));
        ensure!(item != 0, "occupied slot {i} is empty");
        ensure!(
            item <= committed,
            "slot {i} holds id {item} from the future (committed {committed})"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    #[test]
    fn fifo_order_preserved_functionally() {
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(40);
        let (pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        let mut b = [0u8; 8];
        pm.peek(layout.head_addr(), &mut b);
        let head = u64::from_le_bytes(b);
        pm.peek(layout.tail_addr(), &mut b);
        let tail = u64::from_le_bytes(b);
        assert!(head <= tail);
        assert!(tail - head <= layout.capacity);
        // Item ids in the occupied window must be strictly increasing
        // (FIFO of monotonically increasing enqueue ids).
        let mut last = 0;
        for i in head..tail {
            pm.peek(layout.slot(i), &mut b);
            let item = u64::from_le_bytes(b);
            assert!(item > last, "slot {i}: {item} <= {last}");
            last = item;
        }
    }

    #[test]
    fn ops_counter_reaches_total() {
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue);
        let (mut pm, _, ops_cell, _, _) = execute(&spec, 0, spec.ops);
        assert_eq!(pm.read_u64(ops_cell), spec.ops as u64);
    }

    #[test]
    fn small_capacity_wraps_without_overflow() {
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue)
            .with_footprint(8 * 64) // 8 slots
            .with_ops(64);
        let (pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        assert_eq!(layout.capacity, 8);
        let mut b = [0u8; 8];
        pm.peek(layout.tail_addr(), &mut b);
        let tail = u64::from_le_bytes(b);
        pm.peek(layout.head_addr(), &mut b);
        let head = u64::from_le_bytes(b);
        assert!(tail - head <= 8);
    }
}
