//! Workload specifications.
//!
//! The paper evaluates five NVM workloads manipulating persistent data
//! structures (§6.2): array swap, queue, hash table, B-tree and
//! red-black tree. A [`WorkloadSpec`] captures the knobs the evaluation
//! sweeps: operation count, data-structure footprint (Fig. 15), and the
//! per-transaction payload size (Fig. 16's "number of cache lines
//! committed at each transaction").

use nvmm_core::txn::Mechanism;
use nvmm_json::{field, FromJson, FromJsonError, Json, ToJson};

/// The five persistent data-structure workloads of §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Swaps random items in a persistent array.
    ArraySwap,
    /// Randomly en/dequeues items to/from a persistent queue.
    Queue,
    /// Inserts random values into a persistent hash table.
    HashTable,
    /// Inserts random values into a persistent B-tree.
    BTree,
    /// Inserts random values into a persistent red-black tree.
    RbTree,
}

impl WorkloadKind {
    /// All five workloads, in the order the paper's figures plot them.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::ArraySwap,
        WorkloadKind::Queue,
        WorkloadKind::HashTable,
        WorkloadKind::BTree,
        WorkloadKind::RbTree,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::ArraySwap => "Array",
            WorkloadKind::Queue => "Queue",
            WorkloadKind::HashTable => "Hash",
            WorkloadKind::BTree => "B-Tree",
            WorkloadKind::RbTree => "RB-Tree",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl ToJson for WorkloadKind {
    /// A `WorkloadKind` serializes as its figure label (e.g. `"B-Tree"`).
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl FromJson for WorkloadKind {
    fn from_json(json: &Json) -> Result<Self, FromJsonError> {
        WorkloadKind::ALL
            .into_iter()
            .find(|k| Some(k.label()) == json.as_str())
            .ok_or_else(|| FromJsonError(format!("unknown workload kind {json}")))
    }
}

/// Parameters of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which data structure to exercise.
    pub kind: WorkloadKind,
    /// Number of transactions per core.
    pub ops: usize,
    /// Approximate footprint of the data structure in bytes (drives
    /// counter-cache behaviour; Fig. 15 sweeps 100–1000 MB).
    pub footprint_bytes: u64,
    /// Extra 64-byte payload lines logged and mutated per transaction
    /// (Fig. 16 sweeps 1–64).
    pub payload_lines: usize,
    /// Random read probes per transaction across the structure's
    /// footprint — the lookups/scans that accompany updates in real
    /// applications, and the traffic the counter cache serves (Fig. 15).
    pub read_probes: usize,
    /// Versioning mechanism the transactions use (undo or redo
    /// logging) — the paper's insight applies to both (§4.2).
    pub mechanism: Mechanism,
    /// Skew exponent for probe reads: 1.0 = uniform over the footprint;
    /// larger values concentrate probes toward low addresses (the hot
    /// upper levels of a structure), producing the re-reference locality
    /// real traversals have. Fig. 15 uses a skewed distribution so the
    /// counter cache has something to capture.
    pub probe_skew: f64,
    /// Seed for the deterministic operation stream; each core derives
    /// its own stream from `seed ^ core`.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The default evaluation configuration used by the Fig. 12–14
    /// experiments: a modest footprint with a 1-line payload.
    pub fn evaluation_default(kind: WorkloadKind) -> Self {
        Self {
            kind,
            ops: 400,
            footprint_bytes: 4 * 1024 * 1024,
            payload_lines: 1,
            read_probes: 24,
            mechanism: Mechanism::UndoLog,
            probe_skew: 1.0,
            seed: 42,
        }
    }

    /// A small configuration for unit and crash tests.
    pub fn smoke(kind: WorkloadKind) -> Self {
        Self {
            kind,
            ops: 12,
            footprint_bytes: 64 * 1024,
            payload_lines: 1,
            read_probes: 2,
            mechanism: Mechanism::UndoLog,
            probe_skew: 1.0,
            seed: 7,
        }
    }

    /// Returns a copy with a different operation count.
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Returns a copy with a different footprint.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Returns a copy with a different per-transaction payload.
    pub fn with_payload_lines(mut self, lines: usize) -> Self {
        self.payload_lines = lines;
        self
    }

    /// Returns a copy with a different per-transaction probe count.
    pub fn with_read_probes(mut self, probes: usize) -> Self {
        self.read_probes = probes;
        self
    }

    /// Returns a copy with a different versioning mechanism.
    pub fn with_mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Returns a copy with a different probe-skew exponent.
    pub fn with_probe_skew(mut self, skew: f64) -> Self {
        self.probe_skew = skew;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".to_string(), self.kind.to_json()),
            ("ops".to_string(), self.ops.to_json()),
            (
                "footprint_bytes".to_string(),
                self.footprint_bytes.to_json(),
            ),
            ("payload_lines".to_string(), self.payload_lines.to_json()),
            ("read_probes".to_string(), self.read_probes.to_json()),
            ("mechanism".to_string(), self.mechanism.to_json()),
            ("probe_skew".to_string(), self.probe_skew.to_json()),
            ("seed".to_string(), self.seed.to_json()),
        ])
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(json: &Json) -> Result<Self, FromJsonError> {
        Ok(Self {
            kind: field(json, "kind")?,
            ops: field(json, "ops")?,
            footprint_bytes: field(json, "footprint_bytes")?,
            payload_lines: field(json, "payload_lines")?,
            read_probes: field(json, "read_probes")?,
            mechanism: field(json, "mechanism")?,
            probe_skew: field(json, "probe_skew")?,
            seed: field(json, "seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), WorkloadKind::ALL.len());
    }

    #[test]
    fn builders_override_fields() {
        let s = WorkloadSpec::smoke(WorkloadKind::Queue)
            .with_ops(99)
            .with_footprint(123)
            .with_payload_lines(4)
            .with_seed(5);
        assert_eq!(s.ops, 99);
        assert_eq!(s.footprint_bytes, 123);
        assert_eq!(s.payload_lines, 4);
        assert_eq!(s.seed, 5);
        assert_eq!(s.kind, WorkloadKind::Queue);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(WorkloadKind::BTree.to_string(), "B-Tree");
    }
}
