//! B-Tree: inserts random values into a persistent B-tree (§6.2).
//!
//! An insertion-only B-tree with top-down *preemptive splitting*: while
//! descending, any full child is split before entering it, so the set of
//! nodes an insert will modify is exactly the visited path plus the
//! freshly allocated siblings. A read-only pre-pass computes that set,
//! the transaction undo-logs it (prepare), and the insert then mutates in
//! place — the paper's three-stage protocol with batch logging.
//!
//! Node layout (4 cache lines = 256 B):
//!
//! ```text
//! word 0      : nkeys
//! word 1      : is_leaf (0/1)
//! words 2..16 : keys[14]
//! words 17..31: children[15] (node indices; 0 = none)
//! ```

use crate::spec::WorkloadSpec;
use crate::util::{ensure, ConsistencyError, Scaffold};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::txn::Txn;
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::ByteAddr;
use rand::Rng;

/// Maximum keys per node.
pub const MAX_KEYS: usize = 14;
/// Bytes per node (4 lines).
pub const NODE_BYTES: u64 = 256;

/// Addresses of the B-tree structure.
#[derive(Debug, Clone, Copy)]
pub struct BTreeLayout {
    /// Metadata line: root index (u64) at +0, pool cursor (u64) at +8.
    pub meta: ByteAddr,
    /// Node pool base (index 0 is reserved/null).
    pub pool: ByteAddr,
    /// Pool capacity in nodes.
    pub pool_nodes: u64,
}

impl BTreeLayout {
    /// Root-index cell.
    pub fn root_addr(&self) -> ByteAddr {
        self.meta
    }

    /// Pool-cursor cell.
    pub fn cursor_addr(&self) -> ByteAddr {
        ByteAddr(self.meta.0 + 8)
    }

    /// Address of node `i`.
    pub fn node(&self, i: u64) -> ByteAddr {
        ByteAddr(self.pool.0 + i * NODE_BYTES)
    }
}

/// In-memory copy of one node, read/written through an accessor.
#[derive(Debug, Clone, Default)]
struct Node {
    nkeys: u64,
    is_leaf: bool,
    keys: [u64; MAX_KEYS],
    children: [u64; MAX_KEYS + 1],
}

/// Word-level node field offsets.
const OFF_NKEYS: u64 = 0;
const OFF_LEAF: u64 = 8;
const OFF_KEYS: u64 = 16;
const OFF_CHILDREN: u64 = 16 + 8 * MAX_KEYS as u64;

trait Mem {
    fn load_u64(&mut self, a: ByteAddr) -> u64;
    fn store_u64(&mut self, a: ByteAddr, v: u64);
}

impl Mem for Txn<'_> {
    fn load_u64(&mut self, a: ByteAddr) -> u64 {
        self.read_u64(a)
    }
    fn store_u64(&mut self, a: ByteAddr, v: u64) {
        self.write_u64(a, v)
    }
}

/// Read-only adapter over [`RecoveredMemory`] for the checker.
struct RecMem<'a>(&'a mut RecoveredMemory);

impl Mem for RecMem<'_> {
    fn load_u64(&mut self, a: ByteAddr) -> u64 {
        self.0.read_u64(a)
    }
    fn store_u64(&mut self, _a: ByteAddr, _v: u64) {
        unreachable!("checker never writes")
    }
}

fn load_node<M: Mem>(m: &mut M, layout: &BTreeLayout, idx: u64) -> Node {
    let base = layout.node(idx);
    let mut n = Node {
        nkeys: m.load_u64(ByteAddr(base.0 + OFF_NKEYS)),
        is_leaf: m.load_u64(ByteAddr(base.0 + OFF_LEAF)) != 0,
        ..Node::default()
    };
    let nk = (n.nkeys as usize).min(MAX_KEYS);
    for k in 0..nk {
        n.keys[k] = m.load_u64(ByteAddr(base.0 + OFF_KEYS + 8 * k as u64));
    }
    if !n.is_leaf {
        for c in 0..=nk {
            n.children[c] = m.load_u64(ByteAddr(base.0 + OFF_CHILDREN + 8 * c as u64));
        }
    }
    n
}

fn store_node(tx: &mut Txn<'_>, layout: &BTreeLayout, idx: u64, n: &Node) {
    let base = layout.node(idx);
    tx.store_u64(ByteAddr(base.0 + OFF_NKEYS), n.nkeys);
    tx.store_u64(ByteAddr(base.0 + OFF_LEAF), n.is_leaf as u64);
    for k in 0..n.nkeys as usize {
        tx.store_u64(ByteAddr(base.0 + OFF_KEYS + 8 * k as u64), n.keys[k]);
    }
    if !n.is_leaf {
        for c in 0..=n.nkeys as usize {
            tx.store_u64(
                ByteAddr(base.0 + OFF_CHILDREN + 8 * c as u64),
                n.children[c],
            );
        }
    }
}

/// Read-only pre-pass: simulates the preemptive-split descent for `key`
/// and returns the node indices that the insert will modify (existing
/// nodes only — fresh allocations need no undo logging).
fn plan_insert(tx: &mut Txn<'_>, layout: &BTreeLayout, key: u64) -> Vec<u64> {
    let mut touched = Vec::new();
    let root = tx.load_u64(layout.root_addr());
    if root == 0 {
        return touched; // first insert allocates the root; nothing to log
    }
    // A full root is split: the root cell and the old root are modified.
    touched.push(root);
    let mut node = load_node(tx, layout, root);
    while !node.is_leaf {
        let mut ci = node.nkeys as usize;
        for k in 0..node.nkeys as usize {
            if key < node.keys[k] {
                ci = k;
                break;
            }
        }
        let child_idx = node.children[ci];
        let child = load_node(tx, layout, child_idx);
        // If `child` is full it will be split: the parent gains a key
        // (already in `touched`), the child is halved (pushed below) and
        // the sibling is fresh. Routing over the pre-split key array
        // visits the same physical grandchild the post-split descent
        // would, so walking the original child plans the true path.
        touched.push(child_idx);
        node = child;
    }
    touched
}

fn alloc_node(tx: &mut Txn<'_>, layout: &BTreeLayout) -> u64 {
    let idx = tx.load_u64(layout.cursor_addr());
    assert!(idx < layout.pool_nodes, "B-tree node pool exhausted");
    tx.store_u64(layout.cursor_addr(), idx + 1);
    idx
}

/// Splits full child `ci` of `parent_idx`. Returns nothing; the parent
/// gains the median key and a pointer to the fresh right sibling.
fn split_child(tx: &mut Txn<'_>, layout: &BTreeLayout, parent_idx: u64, ci: usize) {
    let mut parent = load_node(tx, layout, parent_idx);
    let left_idx = parent.children[ci];
    let mut left = load_node(tx, layout, left_idx);
    debug_assert_eq!(left.nkeys as usize, MAX_KEYS);

    let mid = MAX_KEYS / 2;
    let median = left.keys[mid];
    let right_idx = alloc_node(tx, layout);
    let mut right = Node {
        is_leaf: left.is_leaf,
        ..Node::default()
    };
    right.nkeys = (MAX_KEYS - mid - 1) as u64;
    for k in 0..right.nkeys as usize {
        right.keys[k] = left.keys[mid + 1 + k];
    }
    if !left.is_leaf {
        for c in 0..=right.nkeys as usize {
            right.children[c] = left.children[mid + 1 + c];
        }
    }
    left.nkeys = mid as u64;

    // Parent: shift keys/children right of ci.
    for k in (ci..parent.nkeys as usize).rev() {
        parent.keys[k + 1] = parent.keys[k];
    }
    for c in (ci + 1..=parent.nkeys as usize).rev() {
        parent.children[c + 1] = parent.children[c];
    }
    parent.keys[ci] = median;
    parent.children[ci + 1] = right_idx;
    parent.nkeys += 1;

    store_node(tx, layout, left_idx, &left);
    store_node(tx, layout, right_idx, &right);
    store_node(tx, layout, parent_idx, &parent);
}

/// Performs the actual insert (mutate stage).
fn do_insert(tx: &mut Txn<'_>, layout: &BTreeLayout, key: u64) {
    let root = tx.load_u64(layout.root_addr());
    if root == 0 {
        let idx = alloc_node(tx, layout);
        let node = Node {
            nkeys: 1,
            is_leaf: true,
            keys: {
                let mut k = [0; MAX_KEYS];
                k[0] = key;
                k
            },
            ..Node::default()
        };
        store_node(tx, layout, idx, &node);
        tx.store_u64(layout.root_addr(), idx);
        return;
    }
    let mut idx = root;
    let root_node = load_node(tx, layout, idx);
    if root_node.nkeys as usize == MAX_KEYS {
        // Grow: new root with the old root as only child, then split.
        let new_root = alloc_node(tx, layout);
        let node = Node {
            nkeys: 0,
            is_leaf: false,
            children: {
                let mut c = [0; MAX_KEYS + 1];
                c[0] = idx;
                c
            },
            ..Node::default()
        };
        store_node(tx, layout, new_root, &node);
        tx.store_u64(layout.root_addr(), new_root);
        split_child(tx, layout, new_root, 0);
        idx = new_root;
    }
    loop {
        let node = load_node(tx, layout, idx);
        if node.is_leaf {
            let mut n = node;
            let mut pos = n.nkeys as usize;
            for k in 0..n.nkeys as usize {
                if key < n.keys[k] {
                    pos = k;
                    break;
                }
            }
            for k in (pos..n.nkeys as usize).rev() {
                n.keys[k + 1] = n.keys[k];
            }
            n.keys[pos] = key;
            n.nkeys += 1;
            store_node(tx, layout, idx, &n);
            return;
        }
        let mut ci = node.nkeys as usize;
        for k in 0..node.nkeys as usize {
            if key < node.keys[k] {
                ci = k;
                break;
            }
        }
        let child = load_node(tx, layout, node.children[ci]);
        if child.nkeys as usize == MAX_KEYS {
            split_child(tx, layout, idx, ci);
            // Re-read the parent: the split inserted a key at ci.
            let parent = load_node(tx, layout, idx);
            if key >= parent.keys[ci] {
                idx = parent.children[ci + 1];
            } else {
                idx = parent.children[ci];
            }
        } else {
            idx = node.children[ci];
        }
    }
}

/// Executes `ops` insert transactions for `core`.
pub fn execute(
    spec: &WorkloadSpec,
    core: usize,
    ops: usize,
) -> (Pmem, UndoLog, ByteAddr, BTreeLayout, usize) {
    // Worst case per insert: path of splits — generous bound of 24
    // logged regions of one node each.
    let mut s = Scaffold::new(spec, core, 26, NODE_BYTES);
    // Pool sized by the configured footprint so probe reads span it.
    let pool_nodes = (2 * spec.ops as u64 + 4)
        .max(16)
        .max(spec.footprint_bytes / NODE_BYTES);
    let meta = s.plan.alloc_lines(1);
    let pool = s.plan.alloc(pool_nodes * NODE_BYTES, 64);
    let layout = BTreeLayout {
        meta,
        pool,
        pool_nodes,
    };

    // Node 0 is reserved (null); cursor starts at 1.
    s.pm.write_u64(layout.cursor_addr(), 1);
    s.pm.clwb(layout.cursor_addr(), 8);
    s.pm.counter_cache_writeback(layout.cursor_addr(), 8);
    s.pm.persist_barrier();

    // Full-width random keys keep duplicates vanishingly rare, so the
    // order check stays exact; the footprint is set by the node pool.
    let _ = spec.footprint_bytes;
    // Everything up to here is setup, persisted before the measured ops.
    let setup_events = s.pm.trace().len();
    for op in 0..ops as u64 {
        let key = s.rng.gen_range(1..u64::MAX);
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(op), s.payload_bytes);
        let mut tx = s.begin_tx(op);
        // Prepare: log meta + every node the insert will touch.
        tx.log_region(layout.meta, 16);
        let touched = plan_insert(&mut tx, &layout, key);
        for idx in &touched {
            tx.log_region(layout.node(*idx), NODE_BYTES as usize);
        }
        // Mutate.
        do_insert(&mut tx, &layout, key);
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, op);
        tx.commit();
        s.pm.compute(3500);
        s.probe_reads(
            layout.pool,
            layout.pool_nodes * NODE_BYTES,
            spec.read_probes,
        );
    }
    (s.pm, s.log, s.ops_cell, layout, setup_events)
}

#[allow(clippy::too_many_arguments)]
fn walk<M: Mem>(
    m: &mut M,
    layout: &BTreeLayout,
    idx: u64,
    lo: u64,
    hi: u64,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    count: &mut u64,
) -> Result<(), ConsistencyError> {
    ensure!(
        idx != 0 && idx < layout.pool_nodes,
        "node index {idx} out of pool"
    );
    ensure!(depth < 64, "tree deeper than 64: cycle suspected");
    let node = load_node(m, layout, idx);
    ensure!(
        node.nkeys as usize <= MAX_KEYS,
        "node {idx} overfull ({} keys)",
        node.nkeys
    );
    ensure!(node.nkeys >= 1, "node {idx} empty");
    let mut prev = lo;
    for k in 0..node.nkeys as usize {
        let key = node.keys[k];
        // Inclusive bounds tolerate duplicate keys adjacent to separators.
        ensure!(
            key >= prev && key <= hi,
            "node {idx} key {key} violates order ({prev}..={hi})"
        );
        prev = key;
    }
    *count += node.nkeys;
    if node.is_leaf {
        match leaf_depth {
            None => *leaf_depth = Some(depth),
            Some(d) => ensure!(*d == depth, "leaf depth {depth} != {d}: unbalanced"),
        }
    } else {
        for c in 0..=node.nkeys as usize {
            let clo = if c == 0 { lo } else { node.keys[c - 1] };
            let chi = if c == node.nkeys as usize {
                hi
            } else {
                node.keys[c]
            };
            walk(
                m,
                layout,
                node.children[c],
                clo,
                chi,
                depth + 1,
                leaf_depth,
                count,
            )?;
        }
    }
    Ok(())
}

/// Structural check: BST ordering, uniform leaf depth, node fill bounds,
/// and a total key count equal to the committed insert count.
pub fn check(
    layout: &BTreeLayout,
    _spec: &WorkloadSpec,
    _core: usize,
    committed: u64,
    mem: &mut RecoveredMemory,
) -> Result<(), ConsistencyError> {
    let mut m = RecMem(mem);
    let root = m.load_u64(layout.root_addr());
    if committed == 0 {
        ensure!(root == 0, "empty tree must have null root, got {root}");
        return Ok(());
    }
    ensure!(root != 0, "{committed} inserts but null root");
    let mut leaf_depth = None;
    let mut count = 0;
    walk(
        &mut m,
        layout,
        root,
        0,
        u64::MAX,
        0,
        &mut leaf_depth,
        &mut count,
    )?;
    ensure!(
        count == committed,
        "tree holds {count} keys, expected {committed}"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    #[test]
    fn inserts_build_valid_tree() {
        // Enough inserts to force multiple splits and a root grow.
        let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(200);
        let (pm, _, ops_cell, layout, _) = execute(&spec, 0, spec.ops);
        let mut pm = pm;
        assert_eq!(pm.read_u64(ops_cell), 200);
        // Validate via the checker against the functional image: wrap it
        // as a "recovered" memory with everything clean.
        // (Full crash validation lives in the integration tests.)
        let root = pm.read_u64(layout.root_addr());
        assert_ne!(root, 0);
        let cursor = pm.read_u64(layout.cursor_addr());
        assert!(cursor > 1, "splits must allocate nodes");
    }

    #[test]
    fn keys_are_sorted_in_functional_leaves() {
        let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(50);
        let (mut pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        struct PmMem<'a>(&'a mut Pmem);
        impl Mem for PmMem<'_> {
            fn load_u64(&mut self, a: ByteAddr) -> u64 {
                let mut b = [0u8; 8];
                self.0.peek(a, &mut b);
                u64::from_le_bytes(b)
            }
            fn store_u64(&mut self, _: ByteAddr, _: u64) {
                unreachable!()
            }
        }
        let mut m = PmMem(&mut pm);
        let root = m.load_u64(layout.root_addr());
        let mut leaf_depth = None;
        let mut count = 0;
        walk(
            &mut m,
            &layout,
            root,
            0,
            u64::MAX,
            0,
            &mut leaf_depth,
            &mut count,
        )
        .unwrap();
        assert_eq!(count, 50);
    }

    #[test]
    fn deep_tree_stays_balanced() {
        let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(600);
        let (mut pm, _, _, layout, _) = execute(&spec, 0, spec.ops);
        struct PmMem<'a>(&'a mut Pmem);
        impl Mem for PmMem<'_> {
            fn load_u64(&mut self, a: ByteAddr) -> u64 {
                let mut b = [0u8; 8];
                self.0.peek(a, &mut b);
                u64::from_le_bytes(b)
            }
            fn store_u64(&mut self, _: ByteAddr, _: u64) {
                unreachable!()
            }
        }
        let mut m = PmMem(&mut pm);
        let root = m.load_u64(layout.root_addr());
        let mut leaf_depth = None;
        let mut count = 0;
        walk(
            &mut m,
            &layout,
            root,
            0,
            u64::MAX,
            0,
            &mut leaf_depth,
            &mut count,
        )
        .unwrap();
        assert_eq!(count, 600);
        assert!(
            leaf_depth.unwrap() >= 1,
            "600 keys must not fit in one node"
        );
    }
}
