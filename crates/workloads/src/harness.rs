//! The workload harness: functional execution, trace generation, and the
//! crash-consistency checking protocol used by the test suite and the
//! paper-reproduction experiments.
//!
//! ## Crash checking
//!
//! [`crash_check`] is the executable form of the paper's correctness
//! claim. For a given design and crash point it:
//!
//! 1. executes the workload functionally and replays its trace through
//!    the timing simulator, injecting the crash;
//! 2. runs undo-log recovery over the surviving NVMM image, asserting
//!    that recovery never reads a line whose counter and ciphertext are
//!    out of sync (Eq. 4);
//! 3. reads the durable operation counter `k` and checks the workload's
//!    structural invariants on the recovered state;
//! 4. re-executes the first `k` operations functionally and requires the
//!    recovered bytes to equal that ground truth on every line the
//!    `k`-op run wrote (excluding the undo log itself, whose lifecycle
//!    differs) — recovery must land on *exactly* the state after the
//!    last durably committed transaction.

use crate::spec::{WorkloadKind, WorkloadSpec};
use crate::util::{ensure, ConsistencyError};
use crate::{array_swap, btree, hash_table, queue, rbtree};
use nvmm_core::pmem::Pmem;
use nvmm_core::recovery::RecoveredMemory;
use nvmm_core::undo::UndoLog;
use nvmm_crypto::mac::MacEngine;
use nvmm_crypto::EncryptionEngine;
use nvmm_sim::addr::ByteAddr;
use nvmm_sim::config::{Design, SimConfig};
use nvmm_sim::integrity::IntegritySpec;
use nvmm_sim::parallel::{mc_threads, run_parallel};
use nvmm_sim::system::{CrashSpec, RunOutcome, System};
use nvmm_sim::time::Time;
use nvmm_sim::trace::Trace;
use std::time::Instant;

/// A functionally executed workload instance for one core.
pub struct Executed {
    /// The persistent-memory context (holds the trace and final image).
    pub pm: Pmem,
    /// The undo log used by the workload's transactions.
    pub log: UndoLog,
    /// Durable operation counter address.
    pub ops_cell: ByteAddr,
    /// Number of leading trace events that belong to setup (structure
    /// initialization, persisted before the measured operations). Crash
    /// sweeps start after this boundary: a crash inside setup models a
    /// failure before the structure exists, which the workload checkers
    /// deliberately do not cover.
    pub setup_events: usize,
    layout: Layout,
    spec: WorkloadSpec,
    core: usize,
}

enum Layout {
    Array(array_swap::ArrayLayout),
    Queue(queue::QueueLayout),
    Hash(hash_table::HashLayout),
    BTree(btree::BTreeLayout),
    Rb(rbtree::RbLayout),
}

/// Executes `ops` operations of `spec` for `core`, functionally.
pub fn execute(spec: &WorkloadSpec, core: usize, ops: usize) -> Executed {
    let (pm, log, ops_cell, layout, setup_events) = match spec.kind {
        WorkloadKind::ArraySwap => {
            let (pm, log, ops_cell, l, s) = array_swap::execute(spec, core, ops);
            (pm, log, ops_cell, Layout::Array(l), s)
        }
        WorkloadKind::Queue => {
            let (pm, log, ops_cell, l, s) = queue::execute(spec, core, ops);
            (pm, log, ops_cell, Layout::Queue(l), s)
        }
        WorkloadKind::HashTable => {
            let (pm, log, ops_cell, l, s) = hash_table::execute(spec, core, ops);
            (pm, log, ops_cell, Layout::Hash(l), s)
        }
        WorkloadKind::BTree => {
            let (pm, log, ops_cell, l, s) = btree::execute(spec, core, ops);
            (pm, log, ops_cell, Layout::BTree(l), s)
        }
        WorkloadKind::RbTree => {
            let (pm, log, ops_cell, l, s) = rbtree::execute(spec, core, ops);
            (pm, log, ops_cell, Layout::Rb(l), s)
        }
    };
    Executed {
        pm,
        log,
        ops_cell,
        setup_events,
        layout,
        spec: *spec,
        core,
    }
}

impl Executed {
    /// Structural invariant check against a recovered memory, given the
    /// recovered durable op count.
    pub fn check_structure(
        &self,
        mem: &mut RecoveredMemory,
        committed: u64,
    ) -> Result<(), ConsistencyError> {
        match &self.layout {
            Layout::Array(l) => array_swap::check(l, &self.spec, self.core, committed, mem),
            Layout::Queue(l) => queue::check(l, &self.spec, self.core, committed, mem),
            Layout::Hash(l) => hash_table::check(l, &self.spec, self.core, committed, mem),
            Layout::BTree(l) => btree::check(l, &self.spec, self.core, committed, mem),
            Layout::Rb(l) => rbtree::check(l, &self.spec, self.core, committed, mem),
        }
    }
}

/// Generates one trace per core for a timing run (each core executes the
/// full `spec.ops` operations on its own region, as in §6.3.2).
pub fn traces_for_cores(spec: &WorkloadSpec, cores: usize) -> Vec<Trace> {
    (0..cores)
        .map(|core| {
            let ex = execute(spec, core, spec.ops);
            ex.pm.into_parts().0
        })
        .collect()
}

/// Convenience: run `spec` on `cores` cores under `design` with no
/// crash and return the timing outcome.
pub fn run_timed(spec: &WorkloadSpec, design: Design, cores: usize) -> RunOutcome {
    let traces = traces_for_cores(spec, cores);
    System::new(SimConfig::table2(design, cores), traces).run(CrashSpec::None)
}

/// Result of a successful crash-consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCheckOutcome {
    /// Durably committed transactions at the crash point.
    pub committed: u64,
    /// Whether recovery rolled an in-flight transaction back.
    pub rolled_back: bool,
    /// Total trace events (useful for sweeping crash points).
    pub trace_events: u64,
}

/// Runs the full crash-consistency protocol for one crash point.
///
/// # Errors
///
/// Returns a [`ConsistencyError`] when recovery reads a garbled line,
/// a structural invariant is violated, or the recovered state deviates
/// from the ground-truth state after the last committed transaction —
/// i.e. exactly when the design under test fails the paper's
/// counter-atomicity requirement.
pub fn crash_check(
    spec: &WorkloadSpec,
    design: Design,
    crash: CrashSpec,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    crash_check_cfg(spec, SimConfig::single_core(design), crash, 0)
}

/// [`crash_check`] with a caller-supplied configuration and an
/// Osiris-style counter-recovery window (0 = disabled). Use a window
/// matching `config.stop_loss` to validate stop-loss recovery.
pub fn crash_check_cfg(
    spec: &WorkloadSpec,
    config: SimConfig,
    crash: CrashSpec,
    recovery_window: u64,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    let design = config.design;
    let integrity = IntegritySpec::from_config(&config);
    let ex = execute(spec, 0, spec.ops);
    let trace = ex.pm.trace().clone();
    let key = config.key;
    let out = System::new(config, vec![trace]).run(crash);
    check_recovered_image(spec, &ex, &out, key, design, integrity, recovery_window)
}

/// The checking half of [`crash_check_cfg`]: given an already-executed
/// workload and an already-simulated (possibly crashed) run, replays
/// recovery over the surviving image and verifies consistency.
///
/// Splitting this from the simulation lets a sweep generate many crash
/// images in parallel and replay the recovery checks over them
/// afterwards (see the `recovery_cost` and `table1` binaries).
///
/// # Errors
///
/// Returns a [`ConsistencyError`] exactly as [`crash_check_cfg`] does:
/// when recovery reads a garbled line, a structural invariant fails, or
/// the recovered bytes deviate from the replayed ground truth.
#[allow(clippy::too_many_arguments)]
pub fn check_recovered_image(
    spec: &WorkloadSpec,
    ex: &Executed,
    out: &RunOutcome,
    key: [u8; 16],
    design: Design,
    integrity: IntegritySpec,
    recovery_window: u64,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    check_image(
        spec,
        ex,
        &out.image,
        key,
        design,
        integrity,
        recovery_window,
    )
}

/// The image-level core of [`check_recovered_image`]: runs the full
/// recovery protocol against *one* NVMM image, wherever it came from —
/// a simulated run's single filtered journal, or one member of the
/// adversarial crash-image set the [`model_check`] enumerator explores.
///
/// # Errors
///
/// Returns a [`ConsistencyError`] exactly as [`check_recovered_image`].
#[allow(clippy::too_many_arguments)]
pub fn check_image(
    spec: &WorkloadSpec,
    ex: &Executed,
    image: &nvmm_sim::NvmmImage,
    key: [u8; 16],
    design: Design,
    integrity: IntegritySpec,
    recovery_window: u64,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    check_image_with(
        spec,
        ex,
        image,
        &EncryptionEngine::new(key),
        &MacEngine::new(key),
        design,
        integrity,
        recovery_window,
    )
}

/// [`check_image`] with caller-supplied engines. The model checker
/// verifies every enumerated image of a crash set against the same key;
/// sharing one warmed [`EncryptionEngine`] (whose OTP pad memo persists
/// across candidate images) avoids re-deriving the AES key schedule and
/// re-computing identical pads per image.
#[allow(clippy::too_many_arguments)]
pub fn check_image_with(
    spec: &WorkloadSpec,
    ex: &Executed,
    image: &nvmm_sim::NvmmImage,
    engine: &EncryptionEngine,
    mac_engine: &MacEngine,
    design: Design,
    integrity: IntegritySpec,
    recovery_window: u64,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    check_image_inner(
        spec,
        ex,
        image,
        None,
        engine,
        mac_engine,
        design,
        integrity,
        recovery_window,
    )
}

/// The shared body of [`check_image_with`]: when the model checker's
/// delta-verified walk already judged the image with a warm
/// [`nvmm_sim::DeltaVerifier`], its verdict arrives as `precomputed`
/// and the full-pass oracle is skipped — the verdict (and so the
/// wrapped error string) is bit-identical by the differential suite's
/// guarantee, so reports cannot depend on which path ran.
#[allow(clippy::too_many_arguments)]
fn check_image_inner(
    spec: &WorkloadSpec,
    ex: &Executed,
    image: &nvmm_sim::NvmmImage,
    precomputed: Option<&Result<(), String>>,
    engine: &EncryptionEngine,
    mac_engine: &MacEngine,
    design: Design,
    integrity: IntegritySpec,
    recovery_window: u64,
) -> Result<CrashCheckOutcome, ConsistencyError> {
    // Integrity oracle first: before recovery touches anything, every
    // cleanly-decrypting line must authenticate against its persisted
    // MAC, and (under strict) every persisted tree node against its
    // persisted children.
    let oracle = match precomputed {
        Some(v) => v.clone(),
        None => nvmm_sim::verify_image_with(image, integrity, engine, mac_engine),
    };
    if let Err(err) = oracle {
        ensure!(
            false,
            "integrity oracle rejected the image under {design}: {err}"
        );
    }
    let trace_events = ex.pm.trace().len() as u64;
    let mut mem = RecoveredMemory::with_engine(image.clone(), engine.clone())
        .with_recovery_window(recovery_window);
    let report = spec.mechanism.recover(&mut mem, &ex.log);
    ensure!(
        report.reads_clean,
        "recovery read garbled lines {:?} under {design}",
        mem.garbled_lines()
    );

    let committed = mem.read_u64(ex.ops_cell);
    ensure!(
        committed <= spec.ops as u64,
        "recovered op counter {committed} exceeds issued ops {}",
        spec.ops
    );

    ex.check_structure(&mut mem, committed)?;

    // Replay equality: recovered bytes must match the ground-truth state
    // after exactly `committed` operations, on every line that state
    // defines (the undo log region excepted — its lifecycle differs).
    let expected = execute(spec, 0, committed as usize);
    let (_, image) = expected.pm.into_parts();
    let log_start = ex.log.valid_addr().line().0;
    let log_end = ex.log.end().line().0;
    for (line, want) in &image {
        if (log_start..log_end).contains(&line.0) {
            continue;
        }
        let mut got = [0u8; 64];
        mem.read(line.byte_addr(), &mut got);
        ensure!(
            got == *want,
            "line {line} deviates from the state after {committed} committed ops"
        );
    }
    ensure!(
        mem.all_reads_clean(),
        "checker reads hit garbled lines {:?}",
        mem.garbled_lines()
    );
    Ok(CrashCheckOutcome {
        committed,
        rolled_back: report.rolled_back,
        trace_events,
    })
}

/// Sweeps `points` evenly spaced crash points across the post-setup
/// portion of the trace, returning the first failure (if any) with its
/// crash point.
pub fn crash_sweep(
    spec: &WorkloadSpec,
    design: Design,
    points: u64,
) -> Result<Vec<CrashCheckOutcome>, (u64, ConsistencyError)> {
    let ex = execute(spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let start = ex.setup_events as u64;
    let step = ((total - start) / points.max(1)).max(1);
    let mut outcomes = Vec::new();
    let mut k = start;
    while k < total {
        match crash_check(spec, design, CrashSpec::AfterEvent(k)) {
            Ok(o) => outcomes.push(o),
            Err(e) => return Err((k, e)),
        }
        k += step;
    }
    Ok(outcomes)
}

/// Bounds and switches for one adversarial model-check run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCheckOpts {
    /// Landing masks to materialize per crash instant (full `2^k`
    /// enumeration when it fits, deterministic seeded sampling beyond).
    pub max_images: usize,
    /// Seed for the sampling stream.
    pub seed: u64,
    /// Osiris-style counter-recovery window (0 = disabled), as in
    /// [`crash_check_cfg`].
    pub recovery_window: u64,
    /// Drop every `counter_cache_writeback()` from the trace before
    /// simulation — the positive-control bug: an SCA program that
    /// forgets the flush must yield at least one violating image.
    pub strip_counter_writebacks: bool,
    /// Run the integrity oracle through the fused delta-verified walk
    /// ([`nvmm_sim::CrashSet::enumerate_verified`]) instead of
    /// re-verifying each enumerated image from scratch. Verdicts are
    /// bit-identical either way (the differential suite pins this);
    /// the switch — and the `NVMM_MC_DELTA=0` environment escape hatch
    /// it is ANDed with — exists to measure and to fall back.
    pub delta_verify: bool,
}

impl Default for ModelCheckOpts {
    fn default() -> Self {
        Self {
            max_images: 128,
            seed: 0xadc0_ffee,
            recovery_window: 0,
            strip_counter_writebacks: false,
            delta_verify: true,
        }
    }
}

/// The workload trace as one model-check run will replay it (with the
/// counter-cache write-backs stripped when the positive-control switch
/// is on).
fn prepared_trace(ex: &Executed, opts: &ModelCheckOpts) -> Trace {
    let trace = ex.pm.trace().clone();
    if !opts.strip_counter_writebacks {
        return trace;
    }
    trace
        .events()
        .iter()
        .filter(|e| !matches!(e, nvmm_sim::TraceEvent::CounterCacheWriteback { .. }))
        .cloned()
        .collect()
}

/// Crash instants at which at least one write is observably in flight,
/// harvested from a completed (crash-free) run's persist windows: the
/// midpoint of each post-setup window, deduplicated and evenly thinned
/// to at most `limit`. Event-aligned crash points almost always fall
/// outside the in-flight windows (the core clock trails the controller
/// pipeline), so these are the instants where adversarial enumeration
/// actually has choices to explore; feed them to [`model_check`] as
/// [`CrashSpec::AtTime`]. Instants inside the setup phase are excluded
/// for the same reason crash sweeps skip it: the checkers deliberately
/// do not model a crash before the structure exists.
pub fn crash_instants(
    spec: &WorkloadSpec,
    design: Design,
    opts: &ModelCheckOpts,
    limit: usize,
) -> Vec<Time> {
    crash_instants_cfg(spec, SimConfig::single_core(design), opts, limit)
}

/// [`crash_instants`] with a caller-supplied configuration.
pub fn crash_instants_cfg(
    spec: &WorkloadSpec,
    config: SimConfig,
    opts: &ModelCheckOpts,
    limit: usize,
) -> Vec<Time> {
    let ex = execute(spec, 0, spec.ops);
    let trace = prepared_trace(&ex, opts);
    // The setup boundary as an instant: the core clock right after the
    // last setup event of the prepared trace (stripping ccwb events
    // shifts the boundary index).
    let setup_events = if opts.strip_counter_writebacks {
        ex.pm.trace().events()[..ex.setup_events]
            .iter()
            .filter(|e| !matches!(e, nvmm_sim::TraceEvent::CounterCacheWriteback { .. }))
            .count()
    } else {
        ex.setup_events
    };
    let setup_end = if setup_events == 0 {
        Time::ZERO
    } else {
        System::new(config.clone(), vec![trace.clone()])
            .run(CrashSpec::AfterEvent(setup_events as u64 - 1))
            .crash_time
            .unwrap_or(Time::ZERO)
    };
    let out = System::new(config, vec![trace]).run(CrashSpec::None);
    let mut mids: Vec<Time> = out
        .persist_windows
        .iter()
        .map(|&(s, g)| Time::from_ps(s.0 + (g.0 - s.0) / 2))
        .filter(|&m| m >= setup_end)
        .collect();
    mids.sort_unstable();
    mids.dedup();
    if limit == 0 || mids.len() <= limit {
        return mids;
    }
    // Even stride over the sorted midpoints keeps coverage spread across
    // the whole run rather than clustered at its start.
    (0..limit).map(|i| mids[i * mids.len() / limit]).collect()
}

/// The smallest failing landing-set found for a violating crash state,
/// plus the error it produces — the model checker's stand-in for
/// proptest shrinking (the vendored `proptest` does not shrink).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimalViolation {
    /// Choice groups that land in the minimal failing image (empty when
    /// the ADR-pessimistic baseline itself fails).
    pub landed: Vec<usize>,
    /// The consistency error that image produces.
    pub error: ConsistencyError,
}

/// Outcome of model-checking every enumerated crash image at one crash
/// instant.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Enumeration accounting (groups, pruning, masks, dedupe).
    pub stats: nvmm_sim::EnumStats,
    /// Line-level-distinct images fed through the recovery oracle.
    pub images_checked: usize,
    /// Images on which the recovery protocol failed.
    pub violations: usize,
    /// Whether the all-miss baseline (the image [`crash_check`] would
    /// test) is itself a violation.
    pub baseline_violation: bool,
    /// Greedily minimized failing landing-set, when any image violated.
    pub minimal: Option<MinimalViolation>,
    /// Wall-clock nanoseconds spent on this model check (simulation,
    /// enumeration, and recovery verification). Telemetry only: it is
    /// deliberately ignored by `PartialEq`, so determinism assertions
    /// comparing two reports still hold.
    pub mc_wall_ns: u64,
    /// Wall-clock nanoseconds of the enumeration phase (the schedule
    /// walk, net of the fused walk's self-reported oracle share when
    /// [`ModelCheckOpts::delta_verify`] is on). Telemetry only, ignored
    /// by `PartialEq` like [`ModelCheckReport::mc_wall_ns`].
    pub enumerate_wall_ns: u64,
    /// Nanoseconds of the verification phase: recovery protocol replay
    /// plus the integrity oracle — the fused walk's measured verify
    /// share when the delta walk is on, the full-pass re-verification
    /// otherwise. Telemetry only, ignored by `PartialEq`.
    pub verify_wall_ns: u64,
}

impl PartialEq for ModelCheckReport {
    fn eq(&self, other: &Self) -> bool {
        // `mc_wall_ns` is wall-clock telemetry; every semantic field
        // participates.
        self.stats == other.stats
            && self.images_checked == other.images_checked
            && self.violations == other.violations
            && self.baseline_violation == other.baseline_violation
            && self.minimal == other.minimal
    }
}

impl Eq for ModelCheckReport {}

impl ModelCheckReport {
    /// `true` when every enumerated image recovered cleanly.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Model-checks one crash instant: enumerates every ADR-legal post-crash
/// image within `opts`' bounds and runs the full recovery protocol
/// ([`check_image`]) over each. Where [`crash_check`] samples the single
/// pessimistic image, this is the paper's universal claim made
/// executable: *no* legal image may fail recovery.
pub fn model_check(
    spec: &WorkloadSpec,
    design: Design,
    crash: CrashSpec,
    opts: &ModelCheckOpts,
) -> ModelCheckReport {
    model_check_cfg(spec, SimConfig::single_core(design), crash, opts)
}

/// [`model_check`] with a caller-supplied configuration. The image
/// enumeration and recovery checks within the crash set run on
/// [`mc_threads`] workers; the report is bit-identical to a
/// single-threaded run for any worker count.
pub fn model_check_cfg(
    spec: &WorkloadSpec,
    config: SimConfig,
    crash: CrashSpec,
    opts: &ModelCheckOpts,
) -> ModelCheckReport {
    model_check_cfg_threads(spec, config, crash, opts, mc_threads())
}

/// [`model_check_cfg`] with an explicit worker count for the crash
/// set's enumeration + verification loop. The parallel-over-instants
/// driver pins this to 1 so the instants themselves carry the
/// parallelism.
fn model_check_cfg_threads(
    spec: &WorkloadSpec,
    config: SimConfig,
    crash: CrashSpec,
    opts: &ModelCheckOpts,
    threads: usize,
) -> ModelCheckReport {
    let started = Instant::now();
    let design = config.design;
    let integrity = IntegritySpec::from_config(&config);
    let key = config.key;
    let ex = execute(spec, 0, spec.ops);
    let trace = prepared_trace(&ex, opts);
    let out = System::new(config, vec![trace]).run(crash);
    let mut report = match out.crash_set {
        Some(set) => {
            check_crash_set_threads(spec, &ex, &set, key, design, integrity, opts, threads)
        }
        None => {
            // Completed run: exactly one legal image.
            let verdict = check_image(
                spec,
                &ex,
                &out.image,
                key,
                design,
                integrity,
                opts.recovery_window,
            );
            let failed = verdict.is_err();
            ModelCheckReport {
                stats: nvmm_sim::EnumStats {
                    groups: 0,
                    groups_pruned: 0,
                    domains: 0,
                    masks_explored: 1,
                    images_unique: 1,
                    images_deduped: 0,
                    exhaustive: true,
                },
                images_checked: 1,
                violations: failed as usize,
                baseline_violation: failed,
                minimal: verdict.err().map(|error| MinimalViolation {
                    landed: Vec::new(),
                    error,
                }),
                mc_wall_ns: 0,
                enumerate_wall_ns: 0,
                verify_wall_ns: 0,
            }
        }
    };
    report.mc_wall_ns = started.elapsed().as_nanos() as u64;
    report
}

/// Model-checks `spec` at every crash instant in `instants`, fanning
/// the instants out over [`mc_threads`] scoped workers. Each instant's
/// job simulates its crash and checks its crash set sequentially
/// (inner enumeration worker count pinned to 1), so the reports come
/// back in instant order and are bit-identical to checking the
/// instants one by one — whatever `NVMM_MC_THREADS` says.
pub fn model_check_instants(
    spec: &WorkloadSpec,
    design: Design,
    instants: &[Time],
    opts: &ModelCheckOpts,
) -> Vec<ModelCheckReport> {
    model_check_instants_cfg(spec, SimConfig::single_core(design), instants, opts)
}

/// [`model_check_instants`] with a caller-supplied configuration.
pub fn model_check_instants_cfg(
    spec: &WorkloadSpec,
    config: SimConfig,
    instants: &[Time],
    opts: &ModelCheckOpts,
) -> Vec<ModelCheckReport> {
    run_parallel(mc_threads(), instants, |&t| {
        model_check_cfg_threads(spec, config.clone(), CrashSpec::AtTime(t), opts, 1)
    })
}

/// The checking half of [`model_check_cfg`]: verifies an
/// already-captured crash state against an already-executed workload.
/// Split out so a sweep can simulate many crash cells in parallel and
/// replay the enumerated checks afterwards (see the `crash_matrix`
/// binary).
#[allow(clippy::too_many_arguments)]
pub fn check_crash_set(
    spec: &WorkloadSpec,
    ex: &Executed,
    set: &nvmm_sim::CrashSet,
    key: [u8; 16],
    design: Design,
    integrity: IntegritySpec,
    opts: &ModelCheckOpts,
) -> ModelCheckReport {
    check_crash_set_threads(spec, ex, set, key, design, integrity, opts, mc_threads())
}

/// [`check_crash_set`] with an explicit worker count for enumeration
/// and image verification.
#[allow(clippy::too_many_arguments)]
fn check_crash_set_threads(
    spec: &WorkloadSpec,
    ex: &Executed,
    set: &nvmm_sim::CrashSet,
    key: [u8; 16],
    design: Design,
    integrity: IntegritySpec,
    opts: &ModelCheckOpts,
    threads: usize,
) -> ModelCheckReport {
    let started = Instant::now();
    let eopts = nvmm_sim::EnumOpts {
        max_images: opts.max_images,
        seed: opts.seed,
    };
    // One warmed engine pair per crash set: every enumerated image is
    // decrypted under the same key, so clones of this engine share the
    // OTP pad memo across images.
    let engine = EncryptionEngine::new(key);
    let mac_engine = MacEngine::new(key);
    // The fused delta-verified walk re-judges each image from what its
    // schedule step dirtied; `NVMM_MC_DELTA=0` (or the opts switch)
    // falls back to full-pass verification per image. Verdicts are
    // bit-identical either way.
    let delta = opts.delta_verify && std::env::var("NVMM_MC_DELTA").as_deref() != Ok("0");
    let (en, oracle_verdicts, fused_verify_ns) = if delta {
        let (en, v, vns) =
            set.enumerate_verified_timed(eopts, threads, integrity, &engine, &mac_engine);
        (en, Some(v), vns)
    } else {
        (set.enumerate_parallel(eopts, threads), None, 0)
    };
    // The fused walk interleaves oracle work with enumeration; its
    // self-reported verify share moves to the verify bucket so the
    // split means the same thing on both paths.
    let enumerate_wall_ns = (started.elapsed().as_nanos() as u64).saturating_sub(fused_verify_ns);
    let verify_started = Instant::now();
    let jobs: Vec<usize> = (0..en.images.len()).collect();
    let verdicts = run_parallel(threads, &jobs, |&i| {
        check_image_inner(
            spec,
            ex,
            &en.images[i].1,
            oracle_verdicts.as_ref().map(|v| &v[i]),
            &engine,
            &mac_engine,
            design,
            integrity,
            opts.recovery_window,
        )
    });
    let verify_wall_ns = verify_started.elapsed().as_nanos() as u64 + fused_verify_ns;
    let mut violations = 0usize;
    let mut baseline_violation = false;
    let mut first_fail: Option<(nvmm_sim::LandMask, ConsistencyError)> = None;
    for (i, verdict) in verdicts.into_iter().enumerate() {
        if let Err(error) = verdict {
            violations += 1;
            // `images[0]` is always the all-miss baseline.
            baseline_violation |= i == 0;
            if first_fail.is_none() {
                first_fail = Some((en.images[i].0.clone(), error));
            }
        }
    }
    let minimal = first_fail.map(|(mask, error)| {
        minimize_violation(
            spec,
            ex,
            set,
            &engine,
            &mac_engine,
            design,
            integrity,
            opts.recovery_window,
            mask,
            error,
        )
    });
    ModelCheckReport {
        stats: en.stats,
        images_checked: en.images.len(),
        violations,
        baseline_violation,
        minimal,
        mc_wall_ns: started.elapsed().as_nanos() as u64,
        enumerate_wall_ns,
        verify_wall_ns,
    }
}

/// Greedy mask minimization: repeatedly step to a smaller *legal* mask
/// (each candidate drops the last landed group of one serialization
/// domain) while the image keeps failing, until no step fails.
#[allow(clippy::too_many_arguments)]
fn minimize_violation(
    spec: &WorkloadSpec,
    ex: &Executed,
    set: &nvmm_sim::CrashSet,
    engine: &EncryptionEngine,
    mac_engine: &MacEngine,
    design: Design,
    integrity: IntegritySpec,
    recovery_window: u64,
    mut mask: nvmm_sim::LandMask,
    mut error: ConsistencyError,
) -> MinimalViolation {
    let mut candidates = Vec::new();
    loop {
        let mut improved = false;
        set.shrink_candidates_into(&mask, &mut candidates);
        for cand in candidates.drain(..) {
            if let Err(e) = check_image_with(
                spec,
                ex,
                &set.image(&cand),
                engine,
                mac_engine,
                design,
                integrity,
                recovery_window,
            ) {
                mask = cand;
                error = e;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    MinimalViolation {
        landed: mask.landed(),
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_dispatches_all_kinds() {
        for kind in WorkloadKind::ALL {
            let spec = WorkloadSpec::smoke(kind).with_ops(5);
            let ex = execute(&spec, 0, 5);
            assert_eq!(ex.pm.trace().tx_count(), 5, "{kind}");
        }
    }

    #[test]
    fn traces_differ_across_cores() {
        let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(5);
        let ts = traces_for_cores(&spec, 2);
        assert_eq!(ts.len(), 2);
        assert_ne!(ts[0], ts[1], "cores must work on disjoint regions/streams");
    }

    #[test]
    fn no_crash_check_passes_for_all_kinds_under_sca() {
        for kind in WorkloadKind::ALL {
            let spec = WorkloadSpec::smoke(kind).with_ops(6);
            let o = crash_check(&spec, Design::Sca, CrashSpec::None)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(o.committed, 6);
            assert!(!o.rolled_back);
        }
    }

    #[test]
    fn run_timed_produces_stats() {
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue);
        let out = run_timed(&spec, Design::Sca, 1);
        assert_eq!(out.stats.transactions_committed, spec.ops as u64);
        assert!(out.stats.nvmm_data_writes > 0);
    }
}
