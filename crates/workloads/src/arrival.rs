//! Open-loop arrival shaping for service-scale benchmarks.
//!
//! The harness's traces are *closed-loop*: each transaction issues the
//! instant the previous one finishes, so measured latency is pure
//! service time and throughput is bounded by one outstanding request
//! per core. A service under load is *open-loop*: requests arrive on
//! their own schedule whether or not the system has caught up, and
//! tail latency grows with queueing delay. [`shape_open_loop`] converts
//! a closed-loop trace into an open-loop one by inserting a
//! [`TraceEvent::WaitUntil`] arrival gate before every transaction and
//! stamping the transaction's `TxCommit` id with the arrival instant,
//! so the replay engine reports arrival-to-commit latency
//! ([`nvmm_sim::system::RunOutcome::latency`]).
//!
//! Three deterministic arrival models are provided (the `fig_service`
//! bench drives all of them):
//!
//! * **steady** — constant inter-arrival gap;
//! * **burst** — alternating fast/slow phases of `phase_txs`
//!   transactions at half and 1.5× the mean gap;
//! * **diurnal** — a triangular ramp between 0.5× and 1.5× the mean
//!   gap with period `2 * phase_txs` transactions, a scaled-down
//!   day/night load cycle.
//!
//! All models preserve the configured mean gap, and per-core arrival
//! schedules are phase-staggered so cores do not arrive in lockstep.

use nvmm_json::{field, FromJson, FromJsonError, Json, ToJson};
use nvmm_sim::time::Time;
use nvmm_sim::trace::{Trace, TraceEvent};

/// The shape of the inter-arrival gap sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Constant gap.
    Steady,
    /// Alternating fast/slow phases (0.5× / 1.5× the mean gap).
    Burst,
    /// Triangular ramp between 0.5× and 1.5× the mean gap.
    Diurnal,
}

impl ArrivalModel {
    /// Stable lowercase label (artifact series names).
    pub fn label(self) -> &'static str {
        match self {
            ArrivalModel::Steady => "steady",
            ArrivalModel::Burst => "burst",
            ArrivalModel::Diurnal => "diurnal",
        }
    }
}

/// A deterministic open-loop arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalCurve {
    /// Gap-sequence shape.
    pub model: ArrivalModel,
    /// Mean inter-arrival gap per core.
    pub mean_gap: Time,
    /// Phase length in transactions for `Burst` (one fast or slow
    /// phase) and `Diurnal` (half a ramp period); ignored by `Steady`.
    pub phase_txs: u64,
}

impl ArrivalCurve {
    /// A constant-rate schedule.
    pub fn steady(mean_gap: Time) -> Self {
        Self {
            model: ArrivalModel::Steady,
            mean_gap,
            phase_txs: 1,
        }
    }

    /// An alternating fast/slow schedule.
    pub fn burst(mean_gap: Time, phase_txs: u64) -> Self {
        Self {
            model: ArrivalModel::Burst,
            mean_gap,
            phase_txs: phase_txs.max(1),
        }
    }

    /// A triangular day/night ramp.
    pub fn diurnal(mean_gap: Time, phase_txs: u64) -> Self {
        Self {
            model: ArrivalModel::Diurnal,
            mean_gap,
            phase_txs: phase_txs.max(1),
        }
    }

    /// The gap preceding transaction `k` (0-based) on one core. Every
    /// model's gaps average to `mean_gap` over a whole phase period.
    fn gap(&self, k: u64) -> Time {
        let g = self.mean_gap.0;
        let ticks = match self.model {
            ArrivalModel::Steady => g,
            ArrivalModel::Burst => {
                if (k / self.phase_txs).is_multiple_of(2) {
                    g / 2
                } else {
                    g + g / 2
                }
            }
            ArrivalModel::Diurnal => {
                let period = 2 * self.phase_txs;
                let pos = k % period;
                // Factor ramps 0.5 → 1.5 over the first half-period and
                // back down over the second, in 1/phase_txs steps.
                let x = pos.min(period - pos); // 0..=phase_txs
                g / 2 + g * x / self.phase_txs
            }
        };
        Time(ticks)
    }
}

impl ToJson for ArrivalCurve {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "model".to_string(),
                Json::Str(self.model.label().to_string()),
            ),
            ("mean_gap".to_string(), self.mean_gap.to_json()),
            ("phase_txs".to_string(), self.phase_txs.to_json()),
        ])
    }
}

impl FromJson for ArrivalCurve {
    fn from_json(json: &Json) -> Result<Self, FromJsonError> {
        let model: String = field(json, "model")?;
        let model = match model.as_str() {
            "steady" => ArrivalModel::Steady,
            "burst" => ArrivalModel::Burst,
            "diurnal" => ArrivalModel::Diurnal,
            other => return Err(FromJsonError(format!("unknown arrival model `{other}`"))),
        };
        Ok(Self {
            model,
            mean_gap: field(json, "mean_gap")?,
            phase_txs: field(json, "phase_txs")?,
        })
    }
}

/// Converts per-core closed-loop traces into open-loop ones: before
/// each transaction (the events up to and including its `TxCommit`) a
/// [`TraceEvent::WaitUntil`] arrival gate is inserted, and the
/// `TxCommit` id is rewritten to the arrival instant's raw tick count.
/// Core `c` of `n` starts with a stagger offset of `c/n` of one mean
/// gap. Events after the last commit (teardown flushes) are untouched.
pub fn shape_open_loop(traces: Vec<Trace>, curve: &ArrivalCurve) -> Vec<Trace> {
    let cores = traces.len().max(1) as u64;
    traces
        .into_iter()
        .enumerate()
        .map(|(core, trace)| {
            let offset = Time(curve.mean_gap.0 * core as u64 / cores);
            shape_core(trace, curve, offset)
        })
        .collect()
}

fn shape_core(trace: Trace, curve: &ArrivalCurve, offset: Time) -> Trace {
    let mut out = Trace::new();
    let mut segment: Vec<TraceEvent> = Vec::new();
    let mut arrival = offset;
    let mut k = 0u64;
    for ev in trace.events() {
        match ev {
            TraceEvent::TxCommit { .. } => {
                arrival += curve.gap(k);
                k += 1;
                out.push(TraceEvent::WaitUntil { at: arrival });
                out.extend(segment.drain(..));
                out.push(TraceEvent::TxCommit { id: arrival.0 });
            }
            other => segment.push(other.clone()),
        }
    }
    // Teardown events after the last commit replay unshaped.
    out.extend(segment);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmm_sim::addr::LineAddr;

    fn closed_loop(txs: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..txs {
            t.push(TraceEvent::Write {
                line: LineAddr(i),
                data: [i as u8; 64],
                counter_atomic: false,
            });
            t.push(TraceEvent::Clwb { line: LineAddr(i) });
            t.push(TraceEvent::PersistBarrier);
            t.push(TraceEvent::TxCommit { id: i });
        }
        t.push(TraceEvent::PersistBarrier); // teardown
        t
    }

    fn arrivals(t: &Trace) -> Vec<Time> {
        t.events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::WaitUntil { at } => Some(*at),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn shaping_preserves_work_and_tags_commits() {
        let orig = closed_loop(10);
        let shaped = &shape_open_loop(
            vec![orig.clone()],
            &ArrivalCurve::steady(Time::from_ns(100)),
        )[0];
        assert_eq!(shaped.tx_count(), orig.tx_count());
        assert_eq!(shaped.write_count(), orig.write_count());
        assert_eq!(
            arrivals(shaped).len() as u64,
            orig.tx_count(),
            "one gate per transaction"
        );
        // Every commit id equals the preceding gate's instant.
        let mut gate = None;
        for ev in shaped.events() {
            match ev {
                TraceEvent::WaitUntil { at } => gate = Some(*at),
                TraceEvent::TxCommit { id } => assert_eq!(Some(Time(*id)), gate),
                _ => {}
            }
        }
    }

    #[test]
    fn steady_gaps_are_constant() {
        let shaped = &shape_open_loop(
            vec![closed_loop(8)],
            &ArrivalCurve::steady(Time::from_ns(50)),
        )[0];
        let at = arrivals(shaped);
        for w in at.windows(2) {
            assert_eq!(w[1] - w[0], Time::from_ns(50));
        }
    }

    #[test]
    fn burst_alternates_and_preserves_mean() {
        let curve = ArrivalCurve::burst(Time::from_ns(100), 4);
        let shaped = &shape_open_loop(vec![closed_loop(16)], &curve)[0];
        let at = arrivals(shaped);
        let gaps: Vec<u64> = at.windows(2).map(|w| (w[1] - w[0]).0).collect();
        assert!(gaps.iter().any(|&g| g == Time::from_ns(50).0));
        assert!(gaps.iter().any(|&g| g == Time::from_ns(150).0));
        // One full fast+slow period averages to the mean gap.
        let period: u64 = gaps[..8].iter().sum();
        assert_eq!(period, 8 * Time::from_ns(100).0);
    }

    #[test]
    fn diurnal_ramps_up_and_down() {
        let curve = ArrivalCurve::diurnal(Time::from_ns(100), 4);
        let shaped = &shape_open_loop(vec![closed_loop(16)], &curve)[0];
        let at = arrivals(shaped);
        let gaps: Vec<u64> = at.windows(2).map(|w| (w[1] - w[0]).0).collect();
        let peak = *gaps.iter().max().unwrap();
        let trough = *gaps.iter().min().unwrap();
        assert!(peak > trough, "ramp must vary the gap");
        assert!(peak <= Time::from_ns(150).0);
        assert!(trough >= Time::from_ns(50).0);
    }

    #[test]
    fn cores_are_staggered() {
        let curve = ArrivalCurve::steady(Time::from_ns(100));
        let shaped = shape_open_loop(vec![closed_loop(4), closed_loop(4)], &curve);
        let first0 = arrivals(&shaped[0])[0];
        let first1 = arrivals(&shaped[1])[0];
        assert_eq!(first1 - first0, Time::from_ns(50), "half-gap stagger");
    }

    #[test]
    fn json_roundtrip() {
        for curve in [
            ArrivalCurve::steady(Time::from_ns(200)),
            ArrivalCurve::burst(Time::from_ns(100), 32),
            ArrivalCurve::diurnal(Time::from_ns(400), 64),
        ] {
            let back =
                ArrivalCurve::from_json(&Json::parse(&curve.to_json().to_compact()).unwrap())
                    .unwrap();
            assert_eq!(back, curve);
        }
    }
}
