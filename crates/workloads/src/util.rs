//! Shared plumbing for the workload implementations.

use crate::spec::WorkloadSpec;
use nvmm_core::pmem::{Pmem, RegionPlanner};
use nvmm_core::txn::{Mechanism, Txn};
use nvmm_core::undo::UndoLog;
use nvmm_sim::addr::{ByteAddr, LINE_BYTES};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A structural-consistency violation found in a recovered memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyError(pub String);

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "consistency violation: {}", self.0)
    }
}

impl std::error::Error for ConsistencyError {}

/// Fails with a formatted [`ConsistencyError`] when `cond` is false.
macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return Err($crate::util::ConsistencyError(format!($($arg)+)));
        }
    };
}
pub(crate) use ensure;

/// Common per-core scaffolding shared by every workload: the persistent
/// context, undo log, the durable operation counter, and a
/// fresh-per-transaction payload arena.
///
/// Each transaction writes its payload blob into a *fresh* arena slot —
/// new data needs no undo backup (an aborted transaction simply orphans
/// the slot), exactly like a freshly allocated object in a persistent
/// heap. Only the operation counter is logged.
pub(crate) struct Scaffold {
    pub pm: Pmem,
    pub plan: RegionPlanner,
    pub log: UndoLog,
    /// Durable operation counter (its own cache line, undo-logged).
    pub ops_cell: ByteAddr,
    payload_arena: ByteAddr,
    pub payload_bytes: usize,
    pub rng: StdRng,
    skew: f64,
    mechanism: Mechanism,
}

impl Scaffold {
    /// Builds the scaffold for `core`. `max_log_entries` /
    /// `max_entry_bytes` size the undo log for the workload's worst-case
    /// transaction. The arena is sized from `spec.ops` so the layout is
    /// identical regardless of how many operations actually execute
    /// (recovery checkers re-execute prefixes).
    pub fn new(
        spec: &WorkloadSpec,
        core: usize,
        max_log_entries: u64,
        max_entry_bytes: u64,
    ) -> Self {
        let mut pm = Pmem::for_core(core);
        let mut plan = RegionPlanner::new(pm.region());
        // +1 entry for the ops counter; redo logging stages one entry
        // per dirty line, so reserve room for the payload blob and a few
        // structure lines beyond the undo-region count.
        let entries = max_log_entries + spec.payload_lines.max(1) as u64 + 8;
        let log_bytes = UndoLog::layout_bytes(entries, max_entry_bytes.max(LINE_BYTES));
        let log = UndoLog::new(
            plan.alloc_lines(log_bytes.div_ceil(LINE_BYTES)),
            entries,
            max_entry_bytes.max(LINE_BYTES),
        );
        let ops_cell = plan.alloc_lines(1);
        let payload_lines = spec.payload_lines.max(1) as u64;
        let payload_bytes = (payload_lines * LINE_BYTES) as usize;
        let payload_arena = plan.alloc_lines(payload_lines * spec.ops.max(1) as u64);
        log.format(&mut pm);
        let rng = StdRng::seed_from_u64(spec.seed ^ (core as u64).wrapping_mul(0x9e37_79b9));
        Self {
            pm,
            plan,
            log,
            ops_cell,
            payload_arena,
            payload_bytes,
            rng,
            skew: spec.probe_skew,
            mechanism: spec.mechanism,
        }
    }

    /// The fresh payload slot for transaction `op`.
    pub fn payload_slot(&self, op: u64) -> ByteAddr {
        ByteAddr(self.payload_arena.0 + op * self.payload_bytes as u64)
    }

    /// Opens transaction `op` under the spec's mechanism, pre-declaring
    /// the ops counter mutation.
    pub fn begin_tx(&mut self, op: u64) -> Txn<'_> {
        let mut tx = Txn::begin(&mut self.pm, &self.log, op, self.mechanism);
        tx.log_region(self.ops_cell, 8);
        tx
    }

    /// Standard transaction epilogue: writes the payload blob (a
    /// deterministic pattern) into the fresh slot and bumps the durable
    /// op counter, then the caller commits.
    pub fn finish_tx(
        tx: &mut Txn<'_>,
        ops_cell: ByteAddr,
        payload: ByteAddr,
        bytes: usize,
        op: u64,
    ) {
        let blob: Vec<u8> = (0..bytes)
            .map(|i| (op as u8).wrapping_add(i as u8))
            .collect();
        tx.write(payload, &blob);
        tx.write_u64(ops_cell, op + 1);
    }

    /// Issues `probes` random line reads over `[base, base + bytes)` —
    /// the non-transactional lookups/scans that accompany each operation,
    /// and the demand traffic the counter cache serves (Fig. 15).
    ///
    /// The spec's `probe_skew` exponent shapes the distribution: 1.0 is
    /// uniform; larger exponents concentrate probes toward low addresses
    /// (a structure's hot upper levels), giving the re-reference
    /// locality real traversals exhibit. Exactly one
    /// `gen_range(0..lines)` draw is consumed per probe regardless of
    /// skew, so checkers can skip the stream precisely.
    pub fn probe_reads(&mut self, base: ByteAddr, bytes: u64, probes: usize) {
        use rand::Rng;
        let lines = (bytes / LINE_BYTES).max(1);
        let skew = self.skew;
        for _ in 0..probes {
            let raw = self.rng.gen_range(0..lines);
            let line = if skew == 1.0 {
                raw
            } else {
                let frac = (raw as f64 + 0.5) / lines as f64;
                ((frac.powf(skew) * lines as f64) as u64).min(lines - 1)
            };
            let mut buf = [0u8; 8];
            self.pm.read(ByteAddr(base.0 + line * LINE_BYTES), &mut buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    #[test]
    fn scaffold_allocations_are_disjoint() {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let s = Scaffold::new(&spec, 0, 4, 64);
        // ops cell after the log; arena slots after the ops cell, and
        // per-op slots never overlap.
        assert!(s.ops_cell.0 >= s.log.end().0);
        assert!(s.payload_slot(0).0 > s.ops_cell.0);
        assert_eq!(
            s.payload_slot(1).0 - s.payload_slot(0).0,
            s.payload_bytes as u64,
            "arena slots are payload-sized and disjoint"
        );
    }

    #[test]
    fn scaffold_rng_deterministic_per_core() {
        use rand::Rng;
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let mut a = Scaffold::new(&spec, 1, 4, 64);
        let mut b = Scaffold::new(&spec, 1, 4, 64);
        let mut c = Scaffold::new(&spec, 2, 4, 64);
        let (x, y, z): (u64, u64, u64) = (a.rng.gen(), b.rng.gen(), c.rng.gen());
        assert_eq!(x, y, "same core, same stream");
        assert_ne!(x, z, "different cores, different streams");
    }

    #[test]
    fn tx_scaffold_commits_and_bumps_counter() {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap);
        let mut s = Scaffold::new(&spec, 0, 4, 64);
        let (ops_cell, payload, bytes) = (s.ops_cell, s.payload_slot(0), s.payload_bytes);
        let mut tx = s.begin_tx(0);
        Scaffold::finish_tx(&mut tx, ops_cell, payload, bytes, 0);
        tx.commit();
        assert_eq!(s.pm.read_u64(ops_cell), 1);
    }
}
