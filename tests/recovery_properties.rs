//! Property-based crash-consistency tests: proptest drives random
//! workload parameters and random crash points; selective
//! counter-atomicity must recover a consistent state every time.

use nvmm::sim::config::Design;
use nvmm::sim::system::CrashSpec;
use nvmm::workloads::{crash_check, execute, WorkloadKind, WorkloadSpec};
use proptest::prelude::*;

/// Maps a fraction onto the post-setup window of the trace. Crashing
/// *during* setup models a failure before the structure exists, which
/// the workload checkers deliberately do not cover (see
/// `Executed::setup_events`).
fn crash_point(spec: &WorkloadSpec, frac: f64) -> u64 {
    let ex = execute(spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let start = ex.setup_events as u64;
    start + ((total - start) as f64 * frac) as u64
}

fn any_kind() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::ArraySwap),
        Just(WorkloadKind::Queue),
        Just(WorkloadKind::HashTable),
        Just(WorkloadKind::BTree),
        Just(WorkloadKind::RbTree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The paper's central guarantee as a property: for any workload,
    /// seed, payload size, and crash point, SCA recovery (a) never reads
    /// a line whose counter and ciphertext disagree and (b) lands on
    /// exactly the state after the last durably committed transaction.
    #[test]
    fn sca_recovers_consistently_from_any_crash(
        kind in any_kind(),
        seed in 0u64..1_000,
        payload_lines in 1usize..4,
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind)
            .with_ops(5)
            .with_seed(seed)
            .with_payload_lines(payload_lines);
        // Crash at the chosen fraction of the post-setup trace.
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
        let outcome = outcome.unwrap();
        prop_assert!(outcome.committed <= 5);
    }

    /// Full counter-atomicity gives the same guarantee (at higher cost).
    #[test]
    fn fca_recovers_consistently_from_any_crash(
        kind in any_kind(),
        seed in 0u64..1_000,
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4).with_seed(seed);
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::Fca, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
    }

    /// Co-location is counter-atomic by construction.
    #[test]
    fn co_located_recovers_consistently_from_any_crash(
        kind in any_kind(),
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::CoLocated, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
    }
}
