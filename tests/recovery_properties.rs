//! Property-based crash-consistency tests: proptest drives random
//! workload parameters and random crash points; selective
//! counter-atomicity must recover a consistent state every time.

use nvmm::sim::config::Design;
use nvmm::sim::system::CrashSpec;
use nvmm::workloads::{
    crash_check, crash_instants, execute, model_check, ModelCheckOpts, WorkloadKind, WorkloadSpec,
};
use proptest::prelude::*;

/// Maps a fraction onto the post-setup window of the trace. Crashing
/// *during* setup models a failure before the structure exists, which
/// the workload checkers deliberately do not cover (see
/// `Executed::setup_events`).
fn crash_point(spec: &WorkloadSpec, frac: f64) -> u64 {
    let ex = execute(spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let start = ex.setup_events as u64;
    start + ((total - start) as f64 * frac) as u64
}

fn any_kind() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::ArraySwap),
        Just(WorkloadKind::Queue),
        Just(WorkloadKind::HashTable),
        Just(WorkloadKind::BTree),
        Just(WorkloadKind::RbTree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The paper's central guarantee as a property: for any workload,
    /// seed, payload size, and crash point, SCA recovery (a) never reads
    /// a line whose counter and ciphertext disagree and (b) lands on
    /// exactly the state after the last durably committed transaction.
    #[test]
    fn sca_recovers_consistently_from_any_crash(
        kind in any_kind(),
        seed in 0u64..1_000,
        payload_lines in 1usize..4,
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind)
            .with_ops(5)
            .with_seed(seed)
            .with_payload_lines(payload_lines);
        // Crash at the chosen fraction of the post-setup trace.
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
        let outcome = outcome.unwrap();
        prop_assert!(outcome.committed <= 5);
    }

    /// Full counter-atomicity gives the same guarantee (at higher cost).
    #[test]
    fn fca_recovers_consistently_from_any_crash(
        kind in any_kind(),
        seed in 0u64..1_000,
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4).with_seed(seed);
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::Fca, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
    }

    /// Co-location is counter-atomic by construction.
    #[test]
    fn co_located_recovers_consistently_from_any_crash(
        kind in any_kind(),
        crash_frac in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        let k = crash_point(&spec, crash_frac);
        let outcome = crash_check(&spec, Design::CoLocated, CrashSpec::AfterEvent(k));
        prop_assert!(outcome.is_ok(), "crash after event {}: {}", k, outcome.unwrap_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The model-checked form of the central guarantee: for any
    /// workload, seed, and *in-flight* crash instant, every NVMM image
    /// ADR can legally leave behind recovers under SCA — not just the
    /// pessimistic one `crash_check` samples. A failure reports the
    /// greedily minimized landing-set (the vendored proptest cannot
    /// shrink, so minimization happens inside the checker).
    #[test]
    fn sca_model_check_clean_at_any_in_flight_instant(
        kind in any_kind(),
        seed in 0u64..100,
        pick in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4).with_seed(seed);
        let opts = ModelCheckOpts { max_images: 32, ..ModelCheckOpts::default() };
        let instants = crash_instants(&spec, Design::Sca, &opts, 0);
        prop_assume!(!instants.is_empty());
        let t = instants[((pick * instants.len() as f64) as usize).min(instants.len() - 1)];
        let rep = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &opts);
        prop_assert!(
            rep.clean(),
            "{} images violated of {} at {t} (minimal landing-set: {:?})",
            rep.violations, rep.images_checked, rep.minimal
        );
    }

    /// Same property under FCA, where whole bursts of pairs are in
    /// flight at once and the enumerator explores their legal prefixes.
    #[test]
    fn fca_model_check_clean_at_any_in_flight_instant(
        kind in any_kind(),
        seed in 0u64..100,
        pick in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec::smoke(kind).with_ops(4).with_seed(seed);
        let opts = ModelCheckOpts { max_images: 32, ..ModelCheckOpts::default() };
        let instants = crash_instants(&spec, Design::Fca, &opts, 0);
        prop_assume!(!instants.is_empty());
        let t = instants[((pick * instants.len() as f64) as usize).min(instants.len() - 1)];
        let rep = model_check(&spec, Design::Fca, CrashSpec::AtTime(t), &opts);
        prop_assert!(
            rep.clean(),
            "{} images violated of {} at {t} (minimal landing-set: {:?})",
            rep.violations, rep.images_checked, rep.minimal
        );
    }
}

// ---------------------------------------------------------------------
// Triage of tests/recovery_properties.proptest-regressions: both saved
// seeds shrank to `ArraySwap, crash_frac = 0.0`, i.e. a crash at the
// exact setup boundary. The named tests below pin that corner (and the
// `crash_frac = 1.0` corner) deterministically so the regression file
// is documentation, not the only guard.
// ---------------------------------------------------------------------

/// Regression seed 5ad846e9 (`co_located_recovers_consistently_from_any_crash`,
/// shrunk to `ArraySwap, crash_frac = 0.0`): crash immediately after the
/// first post-setup event. The structure exists but no operation has
/// committed; recovery must land on the 0-op ground truth.
#[test]
fn array_swap_setup_boundary_crash_recovers_co_located() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    let k = crash_point(&spec, 0.0);
    assert_eq!(k, execute(&spec, 0, spec.ops).setup_events as u64);
    let outcome = crash_check(&spec, Design::CoLocated, CrashSpec::AfterEvent(k))
        .expect("setup-boundary crash must recover");
    assert_eq!(outcome.committed, 0, "nothing committed at the boundary");
}

/// Regression seed ae175ea7 (`fca_recovers_consistently_from_any_crash`,
/// shrunk to `ArraySwap, seed = 0, crash_frac = 0.0`): the same boundary
/// under FCA with the shrunk workload seed.
#[test]
fn array_swap_setup_boundary_crash_recovers_fca_seed_zero() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap)
        .with_ops(4)
        .with_seed(0);
    let k = crash_point(&spec, 0.0);
    let outcome = crash_check(&spec, Design::Fca, CrashSpec::AfterEvent(k))
        .expect("setup-boundary crash must recover");
    assert_eq!(outcome.committed, 0);
}

/// `crash_frac = 1.0` audit: the fraction maps to `AfterEvent(total)`,
/// which never fires (`events_processed` can only reach `total`), so the
/// run completes, recovery sees the final image, and every operation is
/// durably committed. Both `crash_check` and `crash_sweep` (whose grid
/// stops strictly before `total`) treat this edge consistently.
#[test]
fn crash_frac_one_is_a_completed_run() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    let total = execute(&spec, 0, spec.ops).pm.trace().len() as u64;
    assert_eq!(crash_point(&spec, 1.0), total);
    let outcome = crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(total))
        .expect("a completed run must recover");
    assert_eq!(
        outcome.committed, spec.ops as u64,
        "every op is durable when no crash fires"
    );
}
