//! Integration tests for the paper's central claim: counter-atomicity
//! (full, selective, or by co-location) makes encrypted NVMM crash
//! consistent; its absence does not.
//!
//! These sweep simulated power failures across entire workload traces
//! and run full recovery — decryption with persisted counters, undo-log
//! rollback, structural invariants, and replay-equality against the
//! ground-truth state after the last durable commit.

use nvmm::sim::config::Design;
use nvmm::sim::system::CrashSpec;
use nvmm::workloads::{crash_check, crash_sweep, execute, WorkloadKind, WorkloadSpec};

/// Designs that must survive every crash point.
const SAFE_DESIGNS: [Design; 4] = [
    Design::Sca,
    Design::Fca,
    Design::CoLocated,
    Design::CoLocatedCounterCache,
];

#[test]
fn safe_designs_survive_dense_crash_sweeps_on_every_workload() {
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(8);
        for design in SAFE_DESIGNS {
            if let Err((k, e)) = crash_sweep(&spec, design, 30) {
                panic!("{kind} under {design}: crash after event {k} broke consistency: {e}");
            }
        }
    }
}

#[test]
fn unsafe_design_fails_somewhere_on_every_workload() {
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(8);
        assert!(
            crash_sweep(&spec, Design::UnsafeNoAtomicity, 40).is_err(),
            "{kind}: encryption without counter-atomicity must exhibit the Fig. 4 failure"
        );
    }
}

#[test]
fn every_single_event_crash_point_is_safe_under_sca_for_queue() {
    // Exhaustive (not sampled) sweep on one workload: every event
    // boundary in the whole trace.
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(6);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let start = ex.setup_events as u64;
    for k in start..total {
        crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(k))
            .unwrap_or_else(|e| panic!("crash after event {k}/{total}: {e}"));
    }
}

#[test]
fn committed_transactions_are_durable() {
    // Crash strictly after the whole run: everything must be present.
    let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(10);
    let outcome = crash_check(&spec, Design::Sca, CrashSpec::None).expect("consistent");
    assert_eq!(
        outcome.committed, 10,
        "all commits must be durable with no crash"
    );
    assert!(!outcome.rolled_back);
}

#[test]
fn recovered_commit_counts_are_monotonic_in_crash_point() {
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(8);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let mut last = 0;
    let mut k = ex.setup_events as u64;
    while k < total {
        let outcome =
            crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(k)).expect("consistent");
        assert!(
            outcome.committed >= last,
            "durable commits went backwards ({last} -> {}) at crash point {k}",
            outcome.committed
        );
        last = outcome.committed;
        k += 7;
    }
    // Crashing after the very last event must see every commit durable.
    let final_outcome =
        crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(total - 1)).expect("consistent");
    assert!(
        final_outcome.committed >= last,
        "monotonicity holds to the end"
    );
    assert_eq!(
        final_outcome.committed, 8,
        "the final crash point must see every commit"
    );
}

#[test]
fn crash_at_wall_clock_times_is_also_safe() {
    let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(6);
    // Sample wall-clock instants instead of event indexes.
    for ns in [1_000u64, 5_000, 20_000, 50_000, 100_000] {
        crash_check(
            &spec,
            Design::Sca,
            CrashSpec::AtTime(nvmm::sim::Time::from_ns(ns)),
        )
        .unwrap_or_else(|e| panic!("crash at {ns}ns: {e}"));
    }
}

#[test]
fn different_seeds_still_recover() {
    for seed in [1u64, 99, 123_456] {
        let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap)
            .with_ops(6)
            .with_seed(seed);
        if let Err((k, e)) = crash_sweep(&spec, Design::Sca, 12) {
            panic!("seed {seed}: crash after event {k}: {e}");
        }
    }
}

#[test]
fn larger_payloads_still_recover() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue)
        .with_ops(4)
        .with_payload_lines(8);
    if let Err((k, e)) = crash_sweep(&spec, Design::Sca, 15) {
        panic!("8-line payload: crash after event {k}: {e}");
    }
}

#[test]
fn redo_logging_is_also_crash_safe_on_every_workload() {
    // §4.2: the selective-counter-atomicity insight applies to any
    // versioned mechanism; here is redo logging surviving the same
    // sweeps.
    use nvmm::core::txn::Mechanism;
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind)
            .with_ops(8)
            .with_mechanism(Mechanism::RedoLog);
        for design in [Design::Sca, Design::Fca] {
            if let Err((k, e)) = crash_sweep(&spec, design, 25) {
                panic!("{kind} redo under {design}: crash after event {k}: {e}");
            }
        }
    }
}

#[test]
fn redo_logging_without_atomicity_is_unsafe_too() {
    use nvmm::core::txn::Mechanism;
    let mut failures = 0;
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind)
            .with_ops(8)
            .with_mechanism(Mechanism::RedoLog);
        if crash_sweep(&spec, Design::UnsafeNoAtomicity, 40).is_err() {
            failures += 1;
        }
    }
    assert!(
        failures >= 3,
        "most workloads must exhibit the failure under redo too"
    );
}

#[test]
fn redo_can_roll_forward_past_the_crash_point() {
    // Redo's commit point precedes the in-place apply: for some crash
    // points the recovered op count exceeds what a rollback mechanism
    // would keep. Verify at least one roll-forward happens in a sweep.
    use nvmm::core::txn::Mechanism;
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue)
        .with_ops(6)
        .with_mechanism(Mechanism::RedoLog);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let mut rolled_forward = false;
    for k in (ex.setup_events as u64..total).step_by(3) {
        let outcome =
            crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(k)).expect("consistent");
        if outcome.rolled_back && outcome.committed > 0 {
            rolled_forward = true;
        }
    }
    assert!(
        rolled_forward,
        "an armed redo log must get applied somewhere in the sweep"
    );
}
