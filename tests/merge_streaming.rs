//! The streaming-merge allocation bound.
//!
//! `ShardedController::for_each_merged_key` drives the heap-based k-way
//! journal merge: O(shards) cursor state, O(log shards) work per
//! record, and — the property this test pins — an allocation count that
//! is independent of journal length. The assertion lives out here
//! because counting allocations requires a `GlobalAlloc` hook, i.e.
//! `unsafe`, which `nvmm-sim` itself forbids crate-wide.

use nvmm::sim::{Design, LineAddr, ShardedController, SimConfig, Stats, Time};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation process-wide. The harness runs the tests in
/// this file on one thread each; the measured section keeps the count
/// honest by being the only allocator traffic on the calling thread —
/// and the assertion's budget has slack for stray harness allocations
/// anyway.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static PROBE: Counting = Counting;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn merged_traversal_allocates_o_shards_not_o_journal() {
    let shards = 4;
    let cfg = SimConfig::single_core(Design::Sca).with_shards(shards);
    let mut sharded = ShardedController::new(&cfg);
    let mut stats = Stats::new(1);
    let mut t = Time::from_ns(3);
    // A journal two orders of magnitude larger than the shard count:
    // any per-record (or journal-proportional) allocation blows the
    // budget immediately.
    let records = 400u64;
    for i in 0..records {
        sharded.writeback(LineAddr(i * 4), [i as u8; 64], i % 3 == 0, t, &mut stats);
        t += Time::from_ns(11);
    }

    let mut visited = 0u64;
    let mut last = (Time::ZERO, 0usize);
    let allocs = allocations_during(|| {
        sharded.for_each_merged_key(|at, shard| {
            assert!((at, shard) >= last, "merge key must be non-decreasing");
            last = (at, shard);
            visited += 1;
        });
    });

    assert_eq!(visited, sharded.journal_len() as u64);
    assert!(
        visited >= records,
        "counter-atomic writes journal at least one record each"
    );
    // Budget: the cursor-vector clone, the heap's backing storage (plus
    // growth), and a little slack — but nothing journal-proportional.
    let budget = 4 + 2 * shards as u64;
    assert!(
        allocs <= budget,
        "for_each_merged_key allocated {allocs} times over {visited} records \
         (budget {budget}); the k-way merge must stream through O(shards) state"
    );
}
