//! Integration tests for the adversary subsystem
//! (`nvmm_sim::attack` + the detection oracle in
//! `nvmm_sim::integrity`).
//!
//! The acceptance criterion is a *differential detection matrix*: six
//! integrity policies × four attack classes, where the only
//! `Undetected` cells allowed are `mac-only × {replay,
//! counter-rollback}` — the textbook freshness gap of per-line MACs
//! without a tree, epoch, or monotone-counter anchor. Every other
//! `Undetected` cell is a failure and reports its minimized witness
//! (the victim lines the forgery touched). The soundness half is a
//! property test: an *honest* image judged against its own freshness
//! reference never trips the oracle, across policies, crash fractions,
//! and workload shapes.

use nvmm::sim::addr::LineAddr;
use nvmm::sim::attack::{
    expected_vulnerable, run_detection_row, snapshot_pair, victim_lines, AttackKind,
};
use nvmm::sim::config::{Design, IntegrityPolicy, SimConfig};
use nvmm::sim::integrity::{verify_image_attack, AttackVerdict, FreshnessRef, IntegritySpec};
use nvmm::sim::trace::{Trace, TraceEvent};
use proptest::prelude::*;

const ENABLED: [IntegrityPolicy; 6] = [
    IntegrityPolicy::MacOnly,
    IntegrityPolicy::Lazy,
    IntegrityPolicy::Strict,
    IntegrityPolicy::Pipelined,
    IntegrityPolicy::Phoenix,
    IntegrityPolicy::Colocated,
];

/// `rounds` counter-atomic rewrites over `lines` distinct lines, each
/// round writing distinct content — the rewindable workload every
/// attack needs.
fn rewrite_trace(lines: u64, rounds: u64) -> Trace {
    let mut t = Trace::new();
    for round in 0..rounds {
        for i in 0..lines {
            t.push(TraceEvent::Write {
                line: LineAddr(i * 3), // spread over counter lines
                data: [(1 + round * lines + i) as u8; 64],
                counter_atomic: true,
            });
            t.push(TraceEvent::Clwb {
                line: LineAddr(i * 3),
            });
            t.push(TraceEvent::PersistBarrier);
        }
    }
    t
}

fn attack_cfg(policy: IntegrityPolicy) -> SimConfig {
    let mut cfg = SimConfig::single_core(Design::Sca).with_integrity(policy);
    // Summaries on every pair so the phoenix freshness register always
    // has a sequence to regress from.
    cfg.phoenix_epoch_every = 1;
    cfg
}

/// The tentpole acceptance test: the full policy × attack matrix, with
/// `Undetected` allowed exactly on the expected-vulnerable cells.
#[test]
fn detection_matrix_has_no_unexpected_undetected_cells() {
    let traces = vec![rewrite_trace(6, 4)];
    for policy in ENABLED {
        let cfg = attack_cfg(policy);
        let spec = IntegritySpec::from_config(&cfg);
        let (row, outcome) = run_detection_row(&cfg, &traces, 500);
        assert_eq!(row.len(), AttackKind::ALL.len());
        for cell in &row {
            assert!(
                !cell.victims.is_empty(),
                "{policy} × {}: vacuous cell, no victims",
                cell.attack
            );
            if expected_vulnerable(spec, cell.attack) {
                assert_eq!(
                    cell.verdict,
                    AttackVerdict::Undetected,
                    "{policy} × {} was expected vulnerable, but the oracle fired: {:?}",
                    cell.attack,
                    cell.verdict
                );
            } else {
                assert!(
                    cell.verdict.detected(),
                    "UNDETECTED: {policy} × {} slipped past the oracle; \
                     minimized witness victims: {:?}",
                    cell.attack,
                    cell.victims
                );
            }
        }
        // The run behind the matrix also carries a coherent wear story:
        // one charge per architectural write request, coalesced or not.
        assert_eq!(
            outcome.wear.total_writes,
            outcome.stats.nvmm_writes() + outcome.stats.coalesced_writes()
        );
    }
}

/// The blame trails name the mechanism that fired, per policy class.
#[test]
fn detection_blames_name_the_right_mechanism() {
    let traces = vec![rewrite_trace(6, 4)];
    let blame_of = |policy: IntegrityPolicy, kind: AttackKind| -> String {
        let (row, _) = run_detection_row(&attack_cfg(policy), &traces, 500);
        row.iter()
            .find(|c| c.attack == kind)
            .expect("cell present")
            .verdict
            .blame()
            .unwrap_or_else(|| panic!("{policy} × {kind} must detect"))
            .to_string()
    };
    // Tree policies catch wholesale replay through the NV root register.
    for policy in [
        IntegrityPolicy::Lazy,
        IntegrityPolicy::Strict,
        IntegrityPolicy::Pipelined,
    ] {
        let blame = blame_of(policy, AttackKind::Replay);
        assert!(blame.contains("root"), "{policy}: {blame}");
    }
    // Phoenix catches it through epoch-summary sequence regression.
    let blame = blame_of(IntegrityPolicy::Phoenix, AttackKind::Replay);
    assert!(
        blame.contains("epoch regression") || blame.contains("stale epoch"),
        "phoenix: {blame}"
    );
    // Colocated through its monotone counter-sum register.
    let blame = blame_of(IntegrityPolicy::Colocated, AttackKind::Replay);
    assert!(blame.contains("counter rollback"), "colocated: {blame}");
    // Torn writes are a per-line MAC matter for every policy.
    for policy in ENABLED {
        let blame = blame_of(policy, AttackKind::TornWrite);
        assert!(blame.contains("MAC mismatch"), "{policy}: {blame}");
    }
    // Split replay (stale data+counter, current MAC) is the control
    // even mac-only catches.
    let blame = blame_of(IntegrityPolicy::MacOnly, AttackKind::SplitReplay);
    assert!(blame.contains("MAC mismatch"), "mac-only: {blame}");
}

/// The matrix is non-vacuous: the snapshot pair really differs, and
/// mac-only's vulnerability is demonstrated (not merely tolerated).
#[test]
fn mac_only_replay_really_rewinds_state() {
    let cfg = attack_cfg(IntegrityPolicy::MacOnly);
    let traces = vec![rewrite_trace(6, 4)];
    let pair = snapshot_pair(&cfg, &traces, 500);
    let victims = victim_lines(&pair.stale, &pair.latest);
    assert!(
        !victims.is_empty(),
        "snapshots must differ for the replay to mean anything"
    );
    let spec = IntegritySpec::from_config(&cfg);
    let fresh = FreshnessRef::capture(&pair.latest, spec);
    // The stale image — genuinely old data — passes every check
    // mac-only performs. That is the attack, demonstrated end to end.
    assert_eq!(
        verify_image_attack(&pair.stale, spec, cfg.key, &fresh),
        AttackVerdict::Undetected
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Soundness (satellite): replaying the *latest* tuple set — an
    /// honest image judged against its own freshness reference — is
    /// never flagged, under any policy, for both the completed image
    /// and the mid-run crash image. Zero false positives.
    #[test]
    fn honest_images_never_trip_the_oracle(
        lines in 2u64..7,
        rounds in 1u64..5,
        frac_milli in 100u64..900,
    ) {
        let traces = vec![rewrite_trace(lines, rounds)];
        for policy in ENABLED {
            let cfg = attack_cfg(policy);
            let spec = IntegritySpec::from_config(&cfg);
            let pair = snapshot_pair(&cfg, &traces, frac_milli);
            for img in [&pair.latest, &pair.stale] {
                let fresh = FreshnessRef::capture(img, spec);
                let v = verify_image_attack(img, spec, cfg.key, &fresh);
                prop_assert_eq!(
                    v.clone(),
                    AttackVerdict::Undetected,
                    "false positive under {} at frac {}: {:?}",
                    policy, frac_milli, v
                );
            }
        }
    }
}
