//! The streaming cut-schedule allocation bound.
//!
//! `CrashSet::cut_schedule` returns a decoder, not a table: O(domains)
//! resident state no matter how many masks the schedule prescribes,
//! with `CutSchedule::cuts_into` decoding any mask index on demand.
//! This test pins the property the same way `merge_streaming.rs` pins
//! the k-way merge: with a `GlobalAlloc` hook (which requires `unsafe`,
//! so it lives out here — `nvmm-sim` forbids unsafe crate-wide),
//! asserting that building the schedule for a combinatorially large
//! crash set and walking a long prefix of it stays within a byte budget
//! a materialized `n_masks x n_domains` table would blow instantly.

use nvmm::sim::{Design, EnumOpts, LineAddr, ShardedController, SimConfig, Stats, Time};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocated byte process-wide; see `merge_streaming.rs`
/// for why a process-global probe is honest enough here (one thread,
/// budget slack for stray harness traffic).
struct Counting;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static PROBE: Counting = Counting;

fn bytes_during(f: impl FnOnce()) -> u64 {
    let before = BYTES.load(Ordering::Relaxed);
    f();
    BYTES.load(Ordering::Relaxed) - before
}

#[test]
fn cut_schedule_streams_through_o_domains_state() {
    // A burst of counter-atomic writes to distinct lines under two
    // shards: the pairing unit serializes the pairs far slower than the
    // 1 ns submission spacing, so a crash just past the last submission
    // catches nearly every pair in flight — two serialization domains,
    // each with a choice prefix hundreds of groups long, and a
    // legal-image count that is their product.
    let shards = 2;
    let cfg = SimConfig::single_core(Design::Sca).with_shards(shards);
    let mut sharded = ShardedController::new(&cfg);
    let mut stats = Stats::new(1);
    let mut t = Time::from_ns(3);
    let writes = 2000u64;
    for i in 0..writes {
        sharded.writeback(LineAddr(i * 4), [i as u8; 64], true, t, &mut stats);
        t += Time::from_ns(1);
    }
    let set = sharded.crash_set(t + Time::from_ns(100));
    assert_eq!(set.domain_count(), shards, "one pairing domain per shard");
    assert!(
        set.legal_images() > 500_000,
        "burst left only {} legal images in flight",
        set.legal_images()
    );

    // Large enough to keep the schedule exhaustive: every legal image,
    // odometer order.
    let opts = EnumOpts {
        max_images: 1_000_000,
        ..EnumOpts::default()
    };
    let prefix = 100_000usize;
    let mut first = Vec::new();
    let mut last = Vec::new();
    let mut walked = 0u64;
    let bytes = bytes_during(|| {
        let sched = set.cut_schedule(opts);
        assert!(sched.exhaustive(), "schedule must cover the legal space");
        assert_eq!(sched.n_masks() as u64, set.legal_images());
        let mut cuts = Vec::with_capacity(sched.n_domains());
        for i in 0..prefix.min(sched.n_masks()) {
            sched.cuts_into(i, &mut cuts);
            walked += 1;
            if i == 0 {
                first = cuts.clone();
            }
        }
        sched.cuts_into(sched.n_masks() - 1, &mut cuts);
        last = cuts.clone();
    });

    assert_eq!(walked, prefix as u64);
    // Odometer sanity: index 0 decodes to the all-miss corner, and the
    // final index to the full prefix of every domain — whose radices
    // multiply back to the mask count.
    assert!(first.iter().all(|&c| c == 0), "mask 0 must land nothing");
    assert_eq!(
        last.iter().map(|&c| c as u64 + 1).product::<u64>(),
        set.legal_images(),
        "last mask must sit at the odometer's far corner"
    );
    // Budget: the schedule's per-domain radices, the reused cut buffer,
    // and slack for the two corner clones — nothing n_masks-sized. The
    // table this replaces held n_masks x n_domains cut values (~15 MB
    // here) before the first image was ever materialized.
    let budget = 64 * 1024;
    assert!(
        bytes <= budget,
        "cut_schedule + {prefix}-mask walk allocated {bytes} bytes \
         (budget {budget}); the schedule must stream, not materialize"
    );
}
