//! Integration tests for the adversarial crash-image model checker
//! (`nvmm_sim::crashmc` + `nvmm_workloads::model_check`).
//!
//! The paper's claim is universal: *no* NVMM image ADR can legally
//! leave behind may fail recovery under a counter-atomic design. The
//! crash sweeps in `crash_consistency.rs` test one pessimistic image
//! per crash point; these tests enumerate the whole legal image set at
//! instants where writes are observably in flight.

use nvmm::sim::config::{Design, IntegrityPolicy, SimConfig};
use nvmm::sim::system::CrashSpec;
use nvmm::workloads::{
    crash_instants, crash_instants_cfg, execute, model_check, model_check_cfg, ModelCheckOpts,
    WorkloadKind, WorkloadSpec,
};

fn opts(max_images: usize) -> ModelCheckOpts {
    ModelCheckOpts {
        max_images,
        ..ModelCheckOpts::default()
    }
}

/// Acceptance criterion: across all five workloads under FCA and SCA,
/// every enumerated image at every in-flight crash instant recovers
/// cleanly — and the instants are non-vacuous (the enumerator really
/// had choices to explore).
#[test]
fn safe_designs_have_no_violating_images() {
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        for design in [Design::Fca, Design::Sca] {
            let o = opts(32);
            let instants = crash_instants(&spec, design, &o, 6);
            assert!(
                !instants.is_empty(),
                "{kind} under {design}: no in-flight instants found"
            );
            let mut explored_choice = false;
            for &t in &instants {
                let rep = model_check(&spec, design, CrashSpec::AtTime(t), &o);
                explored_choice |= rep.stats.groups > 0;
                assert!(
                    rep.clean(),
                    "{kind} under {design} at {t}: {} of {} images violated; minimal: {:?}",
                    rep.violations,
                    rep.images_checked,
                    rep.minimal
                );
            }
            assert!(
                explored_choice,
                "{kind} under {design}: every instant was vacuous (no choice groups)"
            );
        }
    }
}

/// Positive control for the checker itself: an SCA program that forgets
/// its `counter_cache_writeback()` calls must yield violating images —
/// the Fig. 3(a) failure, found by enumeration rather than by luck.
#[test]
fn missing_counter_writeback_yields_violating_images() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    let o = ModelCheckOpts {
        strip_counter_writebacks: true,
        max_images: 32,
        ..ModelCheckOpts::default()
    };
    let instants = crash_instants(&spec, Design::Sca, &o, 8);
    assert!(!instants.is_empty());
    let mut violations = 0;
    let mut minimal_seen = false;
    for &t in &instants {
        let rep = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &o);
        violations += rep.violations;
        if let Some(m) = rep.minimal {
            minimal_seen = true;
            // The data line persisted with its counter stranded on chip:
            // recovery must observe the counter/ciphertext mismatch.
            assert!(
                !m.error.0.is_empty(),
                "minimal violation must carry the oracle's error"
            );
        }
    }
    assert!(
        violations >= 1,
        "stripping every ccwb must produce at least one violating image"
    );
    assert!(
        minimal_seen,
        "violations must come with a minimized witness"
    );
}

/// The crash-unsafe baseline fails the model check somewhere: encrypted
/// writes without counter-atomicity strand counters on chip, which the
/// single-image oracle already sees at event-aligned crash points.
#[test]
fn unsafe_design_fails_model_check() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(4);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let start = ex.setup_events as u64;
    let o = opts(32);
    let step = ((total - start) / 20).max(1);
    let mut violations = 0;
    let mut k = start;
    while k < total {
        let rep = model_check(
            &spec,
            Design::UnsafeNoAtomicity,
            CrashSpec::AfterEvent(k),
            &o,
        );
        violations += rep.violations;
        k += step;
    }
    assert!(
        violations >= 1,
        "no counter-atomicity must exhibit the Fig. 4 failure under model check"
    );
}

/// Acceptance criterion: results are bit-identical for a fixed seed and
/// bound — the whole report, not just the verdict.
#[test]
fn model_check_is_deterministic_for_fixed_seed_and_bound() {
    let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(4);
    let o = opts(16);
    let instants = crash_instants(&spec, Design::Fca, &o, 3);
    assert!(!instants.is_empty());
    for &t in &instants {
        let a = model_check(&spec, Design::Fca, CrashSpec::AtTime(t), &o);
        let b = model_check(&spec, Design::Fca, CrashSpec::AtTime(t), &o);
        assert_eq!(a, b, "identical inputs must yield identical reports");
    }
    // The violating path is deterministic too (minimization included).
    let o = ModelCheckOpts {
        strip_counter_writebacks: true,
        ..opts(16)
    };
    let instants = crash_instants(&spec, Design::Sca, &o, 2);
    for &t in &instants {
        let a = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &o);
        let b = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &o);
        assert_eq!(a, b);
    }
}

/// Acceptance criterion for the integrity subsystem: across all five
/// workloads under SCA with the strict and lazy policies, every
/// enumerated image at every in-flight crash instant passes both the
/// recovery oracle *and* the integrity oracle (MAC authentication plus,
/// under strict, tree-node/child digest agreement).
#[test]
fn integrity_policies_pass_model_check_on_all_workloads() {
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        for policy in [IntegrityPolicy::Strict, IntegrityPolicy::Lazy] {
            let cfg = SimConfig::single_core(Design::Sca).with_integrity(policy);
            let o = opts(32);
            let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 6);
            assert!(
                !instants.is_empty(),
                "{kind} under {policy}: no in-flight instants found"
            );
            for &t in &instants {
                let rep = model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &o);
                assert!(
                    rep.clean(),
                    "{kind} under {policy} at {t}: {} of {} images violated; minimal: {:?}",
                    rep.violations,
                    rep.images_checked,
                    rep.minimal
                );
            }
        }
    }
}

/// Differential policy conformance: every integrity policy — the three
/// original ones plus pipelined (Freij et al.), phoenix
/// (reconstruction-from-summaries), and colocated (SecPM packed
/// metadata) — model-checks clean on all five workloads under both FCA
/// and SCA. One table, thirty (policy, workload) cells per design; any
/// regression names its exact cell.
#[test]
fn every_integrity_policy_model_checks_clean_on_all_workloads() {
    let policies = [
        IntegrityPolicy::MacOnly,
        IntegrityPolicy::Lazy,
        IntegrityPolicy::Strict,
        IntegrityPolicy::Pipelined,
        IntegrityPolicy::Phoenix,
        IntegrityPolicy::Colocated,
    ];
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        for design in [Design::Fca, Design::Sca] {
            for policy in policies {
                let mut cfg = SimConfig::single_core(design).with_integrity(policy);
                // Emit an epoch summary with every pair so the short
                // smoke runs exercise phoenix's persisted claims too.
                cfg.phoenix_epoch_every = 1;
                let o = opts(24);
                let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 4);
                assert!(
                    !instants.is_empty(),
                    "{kind}/{design}/{policy}: no in-flight instants found"
                );
                for &t in &instants {
                    let rep = model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &o);
                    assert!(
                        rep.clean(),
                        "{kind}/{design}/{policy} at {t}: {} of {} images violated; minimal: {:?}",
                        rep.violations,
                        rep.images_checked,
                        rep.minimal
                    );
                }
            }
        }
    }
}

/// Differential bug table: each policy's characteristic ordering bug —
/// strict persisting parents before children, pipelined dropping the
/// root dependency from its pair, phoenix journaling a stale epoch
/// summary outside the pair — must surface as violating images whose
/// minimized witness blames the right oracle, on more than one
/// workload.
#[test]
fn injected_policy_bugs_are_caught_with_blaming_witnesses() {
    struct Row {
        name: &'static str,
        cfg: SimConfig,
        blame: &'static [&'static str],
    }
    let rows = [
        Row {
            name: "strict/parent-first",
            cfg: SimConfig::single_core(Design::Sca)
                .with_integrity(IntegrityPolicy::Strict)
                .with_tree_bug(),
            blame: &["never persisted", "ahead of child"],
        },
        Row {
            name: "pipelined/dropped-dependency",
            cfg: SimConfig::single_core(Design::Sca)
                .with_integrity(IntegrityPolicy::Pipelined)
                .with_pipeline_bug(),
            blame: &["never persisted", "ahead of child"],
        },
        Row {
            name: "phoenix/stale-epoch",
            cfg: {
                let mut c = SimConfig::single_core(Design::Sca)
                    .with_integrity(IntegrityPolicy::Phoenix)
                    .with_phoenix_bug();
                c.phoenix_epoch_every = 1;
                c
            },
            blame: &["stale epoch"],
        },
    ];
    for row in &rows {
        for kind in [WorkloadKind::ArraySwap, WorkloadKind::Queue] {
            let spec = WorkloadSpec::smoke(kind).with_ops(4);
            let o = opts(32);
            let instants = crash_instants_cfg(&spec, row.cfg.clone(), &o, 8);
            assert!(!instants.is_empty(), "{}/{kind}: no instants", row.name);
            let mut violations = 0;
            let mut blamed = false;
            for &t in &instants {
                let rep = model_check_cfg(&spec, row.cfg.clone(), CrashSpec::AtTime(t), &o);
                violations += rep.violations;
                if let Some(m) = rep.minimal {
                    blamed |= row.blame.iter().any(|b| m.error.0.contains(b));
                }
            }
            assert!(
                violations >= 1,
                "{}/{kind}: the injected bug produced no violating image",
                row.name
            );
            assert!(
                blamed,
                "{}/{kind}: no witness blamed the expected oracle ({:?})",
                row.name, row.blame
            );
        }
    }
}

/// Positive control for the integrity oracle: a strict-policy
/// controller whose tree-path updates persist eagerly instead of riding
/// the counter-atomic pair (the parent-ahead-of-child ordering bug) must
/// yield violating images, and the minimized witness must carry the
/// tree oracle's error.
#[test]
fn injected_tree_ordering_bug_is_caught() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    let cfg = SimConfig::single_core(Design::Sca)
        .with_integrity(IntegrityPolicy::Strict)
        .with_tree_bug();
    let o = opts(32);
    let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 8);
    assert!(!instants.is_empty());
    let mut violations = 0;
    let mut tree_error_seen = false;
    for &t in &instants {
        let rep = model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &o);
        violations += rep.violations;
        if let Some(m) = rep.minimal {
            tree_error_seen |=
                m.error.0.contains("never persisted") || m.error.0.contains("ahead of child");
        }
    }
    assert!(
        violations >= 1,
        "parent-first tree persistence must produce at least one violating image"
    );
    assert!(
        tree_error_seen,
        "the witness must blame the tree ordering, not an unrelated oracle"
    );
}

/// A run that completes (or quiesces) has exactly one legal image, and
/// the report says so.
#[test]
fn completed_run_has_single_clean_image() {
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(4);
    let rep = model_check(&spec, Design::Sca, CrashSpec::None, &opts(32));
    assert!(rep.clean());
    assert_eq!(rep.images_checked, 1);
    assert!(rep.stats.exhaustive);
    assert_eq!(rep.stats.groups, 0);
}

/// Differential acceptance for the incremental rewrite: across all five
/// workloads, at every harvested in-flight instant, the incremental
/// copy-on-write enumeration (sequential and multi-threaded) must
/// produce the same stats, landing masks, fingerprints, and per-image
/// recovery verdicts as the retained eager rebuild-per-mask path —
/// with the warm shared engines agreeing with per-image fresh engines.
#[test]
fn incremental_enumeration_matches_eager_on_all_workloads() {
    use nvmm::crypto::mac::MacEngine;
    use nvmm::crypto::EncryptionEngine;
    use nvmm::sim::integrity::IntegritySpec;
    use nvmm::sim::system::System;
    use nvmm::sim::EnumOpts;
    use nvmm::workloads::{check_image, check_image_with};

    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        let cfg = SimConfig::single_core(Design::Sca).with_integrity(IntegrityPolicy::Strict);
        let integrity = IntegritySpec::from_config(&cfg);
        let key = cfg.key;
        let ex = execute(&spec, 0, spec.ops);
        let trace = ex.pm.trace().clone();
        let o = opts(32);
        let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 4);
        assert!(!instants.is_empty(), "{kind}: no in-flight instants");
        let engine = EncryptionEngine::new(key);
        let mac_engine = MacEngine::new(key);
        for &t in &instants {
            let Some(set) = System::new(cfg.clone(), vec![trace.clone()])
                .run(CrashSpec::AtTime(t))
                .crash_set
            else {
                continue;
            };
            let eopts = EnumOpts {
                max_images: o.max_images,
                seed: o.seed,
            };
            let eager = set.enumerate_eager(eopts);
            for threads in [1, 4] {
                let inc = set.enumerate_parallel(eopts, threads);
                assert_eq!(eager.stats, inc.stats, "{kind} at {t} ({threads} threads)");
                assert_eq!(
                    eager.images.len(),
                    inc.images.len(),
                    "{kind} at {t} ({threads} threads)"
                );
                for (i, ((em, ei), (im, ii))) in
                    eager.images.iter().zip(inc.images.iter()).enumerate()
                {
                    assert_eq!(em.landed(), im.landed(), "{kind} at {t} image {i}: mask");
                    assert_eq!(
                        ei.fingerprint(),
                        ii.fingerprint(),
                        "{kind} at {t} image {i}: fingerprint"
                    );
                    assert_eq!(
                        ii.fingerprint(),
                        ii.fingerprint_recompute(),
                        "{kind} at {t} image {i}: incremental fingerprint drifted"
                    );
                }
            }
            // Recovery verdicts: warm shared engines vs fresh per-image
            // engines must agree on every enumerated image.
            for (i, (_, img)) in eager.images.iter().enumerate() {
                let fresh = check_image(&spec, &ex, img, key, Design::Sca, integrity, 0);
                let warm = check_image_with(
                    &spec,
                    &ex,
                    img,
                    &engine,
                    &mac_engine,
                    Design::Sca,
                    integrity,
                    0,
                );
                assert_eq!(fresh, warm, "{kind} at {t} image {i}: verdicts diverge");
            }
        }
    }
}

/// The fused delta-verified walk, reached through the public harness,
/// must be observationally identical to full-pass verification: same
/// report (violations, stats, minimized witness) for every workload and
/// policy — including on a violating configuration, where the blamed
/// witness must match too. The worker-count dimension comes from the CI
/// matrix, which runs this suite under `NVMM_MC_THREADS=1` and `=4`.
#[test]
fn delta_verified_harness_matches_full_pass() {
    for kind in [WorkloadKind::Queue, WorkloadKind::BTree] {
        let spec = WorkloadSpec::smoke(kind).with_ops(4);
        for policy in [
            IntegrityPolicy::Strict,
            IntegrityPolicy::Phoenix,
            IntegrityPolicy::Colocated,
        ] {
            let cfg = SimConfig::single_core(Design::Sca).with_integrity(policy);
            for strip in [false, true] {
                let delta_opts = ModelCheckOpts {
                    strip_counter_writebacks: strip,
                    ..opts(16)
                };
                let full_opts = ModelCheckOpts {
                    delta_verify: false,
                    ..delta_opts
                };
                assert!(delta_opts.delta_verify, "delta walk must be the default");
                let instants = crash_instants_cfg(&spec, cfg.clone(), &delta_opts, 3);
                for &t in &instants {
                    let full =
                        model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &full_opts);
                    let delta =
                        model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &delta_opts);
                    assert_eq!(
                        full, delta,
                        "{kind}/{policy:?} strip={strip} at {t}: delta and full-pass \
                         harness reports diverge"
                    );
                    assert_eq!(
                        full.minimal, delta.minimal,
                        "{kind}/{policy:?} strip={strip} at {t}: witnesses diverge"
                    );
                }
            }
        }
    }
}

/// The parallel-over-instants driver returns, in instant order, exactly
/// the reports the sequential per-instant loop produces — including the
/// minimized witness on a violating configuration.
#[test]
fn model_check_instants_matches_sequential_loop() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(4);
    let o = opts(16);
    let instants = crash_instants(&spec, Design::Sca, &o, 4);
    assert!(!instants.is_empty());
    let batch = nvmm::workloads::model_check_instants(&spec, Design::Sca, &instants, &o);
    assert_eq!(batch.len(), instants.len());
    for (rep, &t) in batch.iter().zip(&instants) {
        let seq = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &o);
        assert_eq!(*rep, seq, "at {t}: batch and sequential reports diverge");
    }

    // Violating path: witnesses must agree too.
    let o = ModelCheckOpts {
        strip_counter_writebacks: true,
        ..opts(16)
    };
    let instants = crash_instants(&spec, Design::Sca, &o, 3);
    let batch = nvmm::workloads::model_check_instants(&spec, Design::Sca, &instants, &o);
    for (rep, &t) in batch.iter().zip(&instants) {
        let seq = model_check(&spec, Design::Sca, CrashSpec::AtTime(t), &o);
        assert_eq!(rep.minimal, seq.minimal, "at {t}: witnesses diverge");
        assert_eq!(*rep, seq);
    }
}
