//! Integration tests for channel-sharded controllers
//! (`nvmm_sim::shard::ShardedController` behind the
//! `nvmm_sim::addr::ShardMap` interleave).
//!
//! The sharding refactor's contract has three parts, each pinned here:
//!
//! 1. The address interleave is a *bijection* — every global line maps
//!    to exactly one (shard, local line) and back, for any shard count
//!    (property test).
//! 2. Sharding changes *timing*, never *work*: conserved counters
//!    (transactions, line writebacks by kind) and the per-epoch
//!    telemetry totals reconcile exactly with the shards=1 baseline.
//! 3. Crash consistency survives sharding: the model checker still
//!    proves FCA/SCA clean over every ADR-legal image of a sharded
//!    run, and still *catches* an injected counter-writeback bug —
//!    the merged per-shard journal hides nothing from `crashmc`.

use nvmm::sim::addr::{LineAddr, ShardMap};
use nvmm::sim::config::{Design, IntegrityPolicy, SimConfig};
use nvmm::sim::system::{CrashSpec, RunOutcome, System};
use nvmm::sim::Time;
use nvmm::workloads::{
    crash_instants_cfg, model_check_cfg, traces_for_cores, ModelCheckOpts, WorkloadKind,
    WorkloadSpec,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `locate` ∘ `globalize` and `globalize` ∘ `locate` are identities,
    /// and distinct global lines never collide on (shard, local) — the
    /// interleave is a bijection for every shard count.
    #[test]
    fn shard_map_is_a_bijection(
        lines in proptest::collection::vec(0u64..1_000_000, 1..200),
        shards in 1usize..8,
    ) {
        let map = ShardMap::new(shards);
        let lines: HashSet<u64> = lines.into_iter().collect();
        let mut seen: HashSet<(usize, u64)> = HashSet::new();
        for &l in &lines {
            let (shard, local) = map.locate(LineAddr(l));
            prop_assert!(shard < shards, "shard index out of range");
            prop_assert_eq!(shard, map.shard_of(LineAddr(l)), "locate/shard_of must agree");
            prop_assert_eq!(map.globalize(shard, local), LineAddr(l), "round trip");
            prop_assert!(
                seen.insert((shard, local.0)),
                "two global lines collided on shard {} local {}", shard, local.0
            );
        }
    }

    /// The reverse direction: every (shard, local) pair globalizes to a
    /// line that locates straight back to it.
    #[test]
    fn shard_map_globalize_inverts_locate(
        local in 0u64..1_000_000,
        shards in 1usize..8,
        shard in 0usize..8,
    ) {
        let map = ShardMap::new(shards);
        let shard = shard % shards;
        let global = map.globalize(shard, LineAddr(local));
        prop_assert_eq!(map.locate(global), (shard, LineAddr(local)));
    }
}

/// The conserved-work counters of a run: everything a shard count must
/// not change. Timing-dependent counters (cache hit/miss splits, queue
/// coalescing windows, stalls) legitimately shift with shard-local
/// cache slices and drain schedules and are deliberately excluded.
fn conserved(stats: &nvmm::sim::Stats) -> (u64, u64, u64) {
    (
        stats.transactions_committed,
        stats.plain_writes + stats.counter_atomic_writes,
        stats.nvmm_data_writes + stats.coalesced_data_writes,
    )
}

#[test]
fn sharded_stats_reconcile_with_single_shard_baseline() {
    let cores = 4;
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(6);
    let run = |shards: usize| {
        let cfg = SimConfig::table2(Design::Sca, cores).with_shards(shards);
        System::new(cfg, traces_for_cores(&spec, cores)).run(CrashSpec::None)
    };
    let base = run(1);
    for shards in [2, 4] {
        let out = run(shards);
        assert_eq!(
            conserved(&out.stats),
            conserved(&base.stats),
            "shards={shards} changed the work performed, not just its timing"
        );
        assert_eq!(
            out.image.fingerprint(),
            base.image.fingerprint(),
            "shards={shards} changed the final NVMM image"
        );
    }
}

#[test]
fn sharded_telemetry_reconciles_with_final_stats() {
    let cores = 4;
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(6);
    let mut cfg = SimConfig::table2(Design::Sca, cores).with_shards(4);
    cfg.telemetry_epoch = Some(Time::from_ns(500));
    let out = System::new(cfg, traces_for_cores(&spec, cores)).run(CrashSpec::None);
    let timeline = out.timeline.expect("telemetry was enabled");
    assert!(
        !timeline.epochs.is_empty(),
        "run must span at least one epoch"
    );
    // Epoch deltas are exhaustive: their totals equal the final merged
    // stats, so no shard's activity escapes the sampler.
    let total = |f: fn(&nvmm::sim::telemetry::EpochSample) -> u64| {
        timeline.epochs.iter().map(f).sum::<u64>()
    };
    assert_eq!(total(|e| e.nvmm_data_writes), out.stats.nvmm_data_writes);
    assert_eq!(
        total(|e| e.nvmm_counter_writes),
        out.stats.nvmm_counter_writes
    );
    assert_eq!(
        total(|e| e.nvmm_metadata_writes),
        out.stats.nvmm_metadata_writes
    );
    assert_eq!(total(|e| e.bytes_written), out.stats.bytes_written);
    assert_eq!(
        total(|e| e.counter_cache_hits),
        out.stats.counter_cache_hits
    );
    assert_eq!(
        total(|e| e.counter_cache_misses),
        out.stats.counter_cache_misses
    );
}

/// Wear is conserved work, not timing: the per-line write counts a
/// sharded run accumulates across its controllers must merge to
/// exactly the shards=1 report — distinct lines, totals, maximum,
/// histogram, everything.
#[test]
fn sharded_wear_reports_reconcile_with_single_shard_baseline() {
    let cores = 4;
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(6);
    let run = |shards: usize| {
        let cfg = SimConfig::table2(Design::Sca, cores).with_shards(shards);
        System::new(cfg, traces_for_cores(&spec, cores)).run(CrashSpec::None)
    };
    let base = run(1);
    assert!(base.wear.distinct_lines > 0, "workload must touch NVMM");
    assert_eq!(
        base.wear.total_writes,
        base.stats.nvmm_writes() + base.stats.coalesced_writes(),
        "wear totals must account for every NVMM write request"
    );
    assert_eq!(
        base.stats.wear_line_writes,
        base.stats.nvmm_writes() + base.stats.coalesced_writes()
    );
    for shards in [2, 4] {
        let out = run(shards);
        assert_eq!(
            out.wear, base.wear,
            "shards={shards} changed the merged wear report"
        );
    }
}

/// The time-resolved wear series is exhaustive: per-epoch
/// `wear_line_writes` deltas sum to the final merged counter, so no
/// shard's device writes escape the sampler.
#[test]
fn sharded_wear_telemetry_reconciles_with_final_stats() {
    let cores = 4;
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(6);
    let mut cfg = SimConfig::table2(Design::Sca, cores).with_shards(4);
    cfg.telemetry_epoch = Some(Time::from_ns(500));
    let out = System::new(cfg, traces_for_cores(&spec, cores)).run(CrashSpec::None);
    let timeline = out.timeline.expect("telemetry was enabled");
    let series: u64 = timeline.epochs.iter().map(|e| e.wear_line_writes).sum();
    assert_eq!(series, out.stats.wear_line_writes);
    assert_eq!(series, out.wear.total_writes);
}

fn opts(max_images: usize) -> ModelCheckOpts {
    ModelCheckOpts {
        max_images,
        ..ModelCheckOpts::default()
    }
}

/// Acceptance criterion: FCA and SCA stay provably clean when the
/// journal is merged from multiple shard domains.
#[test]
fn sharded_safe_designs_have_no_violating_images() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    for design in [Design::Fca, Design::Sca] {
        let cfg = SimConfig::single_core(design).with_shards(2);
        let o = opts(32);
        let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 6);
        assert!(!instants.is_empty(), "{design}: no in-flight instants");
        let mut explored_choice = false;
        for &t in &instants {
            let rep = model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &o);
            explored_choice |= rep.stats.groups > 0;
            assert!(
                rep.clean(),
                "{design} at {t} with 2 shards: {} of {} images violated; minimal: {:?}",
                rep.violations,
                rep.images_checked,
                rep.minimal
            );
        }
        assert!(
            explored_choice,
            "{design}: every sharded instant was vacuous"
        );
    }
}

/// Positive control: the checker must still *find* bugs across shard
/// boundaries. Stripping counter writebacks under SCA yields violating
/// images even when counters and data drain through separate shards.
#[test]
fn sharded_checker_still_catches_missing_counter_writebacks() {
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(4);
    let o = ModelCheckOpts {
        strip_counter_writebacks: true,
        max_images: 32,
        ..ModelCheckOpts::default()
    };
    let cfg = SimConfig::single_core(Design::Sca).with_shards(2);
    let instants = crash_instants_cfg(&spec, cfg.clone(), &o, 8);
    assert!(!instants.is_empty());
    let violations: usize = instants
        .iter()
        .map(|&t| model_check_cfg(&spec, cfg.clone(), CrashSpec::AtTime(t), &o).violations)
        .sum();
    assert!(
        violations > 0,
        "injected Fig. 3(a) bug went undetected across shard domains"
    );
}

/// Field-by-field comparison of two run outcomes — everything a
/// `RunOutcome` reports, including the timeline (whose epoch deltas are
/// merged across shard workers at epoch barriers), the wear report
/// (merged per-shard write counts), and the latency histogram.
fn assert_outcomes_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(
        a.image.fingerprint(),
        b.image.fingerprint(),
        "{what}: NVMM image diverged"
    );
    assert_eq!(a.crash_time, b.crash_time, "{what}: crash time diverged");
    assert_eq!(
        a.persist_windows, b.persist_windows,
        "{what}: persist windows (merged journal order) diverged"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{what}: event count diverged"
    );
    assert_eq!(a.timeline, b.timeline, "{what}: telemetry diverged");
    assert_eq!(a.latency, b.latency, "{what}: latency histogram diverged");
    assert_eq!(a.wear, b.wear, "{what}: wear report diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Cross-thread determinism, fuzzed: for random seeds, workloads
    /// and integrity policies, a 4-worker parallel replay produces a
    /// `RunOutcome` identical to the sequential path — stats, image,
    /// persist windows (the merged journal's in-flight order),
    /// telemetry, wear, latency — along with the same single-shard
    /// parity verdict.
    #[test]
    fn parallel_replay_is_deterministic(
        seed in 0u64..1_000_000,
        kind_ix in 0usize..3,
        ops in 3usize..7,
        policy_ix in 0usize..IntegrityPolicy::ALL.len(),
    ) {
        let kind = [WorkloadKind::HashTable, WorkloadKind::Queue, WorkloadKind::ArraySwap][kind_ix];
        let mut spec = WorkloadSpec::smoke(kind).with_ops(ops);
        spec.seed = seed;
        let cores = 2;
        let mut cfg = SimConfig::table2(Design::Sca, cores)
            .with_shards(4)
            .with_integrity(IntegrityPolicy::ALL[policy_ix]);
        cfg.telemetry_epoch = Some(Time::from_ns(700));
        let traces = traces_for_cores(&spec, cores);
        let (base, base_parity) = System::new(cfg.clone(), traces.clone())
            .with_shard_threads(1)
            .run_with_parity_check(CrashSpec::None);
        let (par, par_parity) = System::new(cfg, traces)
            .with_shard_threads(4)
            .run_with_parity_check(CrashSpec::None);
        prop_assert_eq!(par_parity, base_parity, "parity probe diverged");
        assert_outcomes_identical(&par, &base, "threads=4 vs threads=1");
    }
}

/// Cross-thread determinism over every integrity policy, pinned (the
/// fuzz above samples; this leaves no policy to chance): each of the
/// six non-trivial policies — and the no-integrity baseline — replays
/// bit-identically with 4 shard workers.
#[test]
fn parallel_replay_deterministic_across_all_integrity_policies() {
    let cores = 2;
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(5);
    let traces = traces_for_cores(&spec, cores);
    for policy in IntegrityPolicy::ALL {
        let mut cfg = SimConfig::table2(Design::Sca, cores)
            .with_shards(4)
            .with_integrity(policy);
        cfg.telemetry_epoch = Some(Time::from_ns(600));
        let (base, base_parity) = System::new(cfg.clone(), traces.clone())
            .with_shard_threads(1)
            .run_with_parity_check(CrashSpec::None);
        let (par, par_parity) = System::new(cfg, traces.clone())
            .with_shard_threads(4)
            .run_with_parity_check(CrashSpec::None);
        assert_eq!(par_parity, base_parity, "{policy:?}: parity probe diverged");
        assert_outcomes_identical(&par, &base, &format!("{policy:?} threads=4 vs 1"));
    }
}

/// Batched-journal compaction folds records' in-flight windows away,
/// so combining it with crash analysis would be unsound — the driver
/// must refuse up front with a descriptive error instead of silently
/// enumerating from a truncated journal.
#[test]
#[should_panic(expected = "journal batching is completion-only")]
fn journal_batching_refuses_crash_analysis() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(4);
    let cfg = SimConfig::single_core(Design::Sca).with_shards(2);
    let traces = traces_for_cores(&spec, cfg.cores);
    System::new(cfg, traces)
        .with_journal_batch(8)
        .run(CrashSpec::AtTime(Time::from_ns(500)));
}

/// The completion path with the same batching knob stays valid: the
/// run finishes, and its final image (fingerprinted via the stats the
/// outcome carries) matches an unbatched reference run — compaction
/// changes journal memory, never the completion image.
#[test]
fn journal_batching_preserves_completion_outcome() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(4);
    let cfg = SimConfig::single_core(Design::Sca).with_shards(2);
    let traces = traces_for_cores(&spec, cfg.cores);
    let batched = System::new(cfg.clone(), traces.clone())
        .with_journal_batch(4)
        .run(CrashSpec::None);
    let reference = System::new(cfg, traces).run(CrashSpec::None);
    assert_eq!(
        batched.image.fingerprint(),
        reference.image.fingerprint(),
        "compaction must not change the completion image"
    );
    assert_eq!(batched.stats.runtime, reference.stats.runtime);
}
