//! Integration tests asserting the paper's headline *shapes* hold in the
//! reproduction (absolute numbers differ; orderings and trends must
//! not). These are the executable form of EXPERIMENTS.md.

use nvmm::sim::config::Design;
use nvmm::workloads::{run_timed, WorkloadKind, WorkloadSpec};

fn spec(kind: WorkloadKind) -> WorkloadSpec {
    WorkloadSpec::evaluation_default(kind).with_ops(120)
}

fn runtime(kind: WorkloadKind, design: Design, cores: usize) -> f64 {
    run_timed(&spec(kind), design, cores).stats.runtime.0 as f64
}

fn traffic(kind: WorkloadKind, design: Design) -> u64 {
    run_timed(&spec(kind), design, 1).stats.bytes_written
}

#[test]
fn encryption_costs_something_but_not_everything() {
    // Fig. 12: every encrypted design is slower than no encryption, but
    // within ~2x in the evaluated configurations.
    for kind in WorkloadKind::ALL {
        let base = runtime(kind, Design::NoEncryption, 1);
        for design in [
            Design::Ideal,
            Design::Sca,
            Design::Fca,
            Design::CoLocatedCounterCache,
        ] {
            let r = runtime(kind, design, 1) / base;
            assert!(
                r > 1.0,
                "{kind}/{design}: encryption must not be free (got {r:.3})"
            );
            assert!(
                r < 2.5,
                "{kind}/{design}: slowdown {r:.3} is out of the paper's regime"
            );
        }
    }
}

#[test]
fn sca_tracks_ideal_single_core() {
    // Fig. 12: SCA's runtime is within a few percent of the Ideal
    // (no-counter-atomicity-cost) design on one core.
    for kind in WorkloadKind::ALL {
        let sca = runtime(kind, Design::Sca, 1);
        let ideal = runtime(kind, Design::Ideal, 1);
        assert!(
            sca / ideal < 1.10,
            "{kind}: SCA should be within 10% of Ideal single-core (got {:.3})",
            sca / ideal
        );
    }
}

#[test]
fn fca_is_slower_than_sca() {
    // Figs. 12/13: full counter-atomicity always costs more than
    // selective counter-atomicity.
    for kind in WorkloadKind::ALL {
        let sca = runtime(kind, Design::Sca, 1);
        let fca = runtime(kind, Design::Fca, 1);
        assert!(
            fca > sca,
            "{kind}: FCA ({fca}) must be slower than SCA ({sca})"
        );
    }
}

#[test]
fn sca_over_fca_advantage_grows_with_cores() {
    // Fig. 13's headline: the SCA/FCA gap widens as cores are added
    // (6.3% -> 40.3% from 1 to 8 cores in the paper).
    let kind = WorkloadKind::HashTable;
    let gap = |cores: usize| {
        let sca = run_timed(&spec(kind), Design::Sca, cores)
            .stats
            .throughput_tps();
        let fca = run_timed(&spec(kind), Design::Fca, cores)
            .stats
            .throughput_tps();
        sca / fca
    };
    let g1 = gap(1);
    let g4 = gap(4);
    assert!(g1 > 1.0, "SCA must beat FCA at 1 core (got {g1:.3})");
    assert!(
        g4 > g1,
        "the SCA/FCA gap must grow with cores ({g1:.3} -> {g4:.3})"
    );
}

#[test]
fn multicore_throughput_scales() {
    // Fig. 13: adding cores increases total throughput for SCA.
    let kind = WorkloadKind::ArraySwap;
    let t1 = run_timed(&spec(kind), Design::Sca, 1)
        .stats
        .throughput_tps();
    let t4 = run_timed(&spec(kind), Design::Sca, 4)
        .stats
        .throughput_tps();
    assert!(
        t4 > 2.0 * t1,
        "4-core SCA should be well above 2x single-core (got {:.2}x)",
        t4 / t1
    );
}

#[test]
fn sca_writes_less_than_fca() {
    // Fig. 14: counter coalescing in the counter cache reduces traffic.
    for kind in WorkloadKind::ALL {
        let sca = traffic(kind, Design::Sca);
        let fca = traffic(kind, Design::Fca);
        assert!(
            sca < fca,
            "{kind}: SCA traffic ({sca}) must be below FCA ({fca})"
        );
    }
}

#[test]
fn co_located_traffic_is_near_the_widening_tax() {
    // Fig. 14: co-located designs write 72B per 64B line (+12.5%) and no
    // separate counter lines. Small write-queue coalescing differences
    // move the measured ratio a few points around the tax, but it must
    // stay far below the separate-counter designs' overhead.
    for kind in [WorkloadKind::HashTable, WorkloadKind::BTree] {
        let base = traffic(kind, Design::NoEncryption) as f64;
        let co = traffic(kind, Design::CoLocated) as f64;
        let fca = traffic(kind, Design::Fca) as f64;
        let ratio = co / base;
        assert!(
            (1.05..1.30).contains(&ratio),
            "{kind}: co-located traffic ratio {ratio:.3} should be near 1.125"
        );
        assert!(
            co < fca,
            "{kind}: the widening tax must undercut FCA's counter lines"
        );
    }
}

#[test]
fn counter_cache_hit_overlap_beats_serialized_decryption() {
    // Figs. 5/6: with a warm counter cache the read path overlaps pad
    // generation; the plain co-located design must be slower than the
    // co-located + counter-cache design.
    for kind in WorkloadKind::ALL {
        let plain = runtime(kind, Design::CoLocated, 1);
        let cached = runtime(kind, Design::CoLocatedCounterCache, 1);
        assert!(
            plain > cached,
            "{kind}: serialized decryption ({plain}) must cost more than overlapped ({cached})"
        );
    }
}

#[test]
fn bigger_transactions_amortize_sca_overhead() {
    // Fig. 16: SCA-over-Ideal overhead shrinks as the per-transaction
    // payload grows.
    let kind = WorkloadKind::Queue;
    let overhead = |lines: usize| {
        let s = spec(kind).with_payload_lines(lines).with_ops(80);
        let sca = run_timed(&s, Design::Sca, 1).stats.runtime.0 as f64;
        let ideal = run_timed(&s, Design::Ideal, 1).stats.runtime.0 as f64;
        sca / ideal
    };
    let small = overhead(1);
    let large = overhead(32);
    assert!(
        large <= small + 1e-9,
        "SCA overhead must not grow with tx size (1 line: {small:.4}, 32 lines: {large:.4})"
    );
}

#[test]
fn faster_reads_magnify_sca_advantage_over_co_located() {
    // Fig. 17a: as read latency drops, the co-located design's
    // serialized decryption dominates and SCA's edge grows. The probe
    // working set is pinned into the L2-missing / counter-cache-fitting
    // window where the comparison is meaningful (see the fig17 binary).
    use nvmm::sim::config::SimConfig;
    use nvmm::sim::system::{CrashSpec, System};
    use nvmm::workloads::traces_for_cores;
    let kind = WorkloadKind::BTree;
    let s = spec(kind)
        .with_ops(400)
        .with_read_probes(48)
        .with_footprint(6 << 20);
    let traces = traces_for_cores(&s, 1);
    let speedup = |read_factor: f64| {
        let run = |design: Design| {
            let mut cfg = SimConfig::single_core(design);
            cfg.pcm = cfg.pcm.scale_read(read_factor);
            System::new(cfg, traces.clone())
                .run(CrashSpec::None)
                .stats
                .runtime
                .0 as f64
        };
        run(Design::CoLocated) / run(Design::Sca)
    };
    let slow = speedup(10.0);
    let fast = speedup(1.0);
    assert!(
        fast > slow,
        "SCA speedup over co-located must grow as reads get faster ({slow:.3} -> {fast:.3})"
    );
}

#[test]
fn counter_cache_size_improves_sca_until_footprint_dominates() {
    // Fig. 15: a larger counter cache lowers the miss rate.
    use nvmm::sim::config::SimConfig;
    use nvmm::sim::system::{CrashSpec, System};
    use nvmm::workloads::traces_for_cores;
    // Long, probe-heavy, skewed run: the counter working set must both
    // exceed the small cache and have re-reference locality, or every
    // access is a compulsory miss and size cannot matter (see fig15).
    let s = WorkloadSpec::evaluation_default(WorkloadKind::ArraySwap)
        .with_ops(600)
        .with_read_probes(64)
        .with_probe_skew(3.0)
        .with_footprint(64 << 20);
    let miss_rate = |cc_bytes: u64| {
        let cfg = SimConfig::single_core(Design::Sca).with_counter_cache_bytes(cc_bytes);
        let out = System::new(cfg, traces_for_cores(&s, 1)).run(CrashSpec::None);
        out.stats.counter_cache_miss_rate()
    };
    let small = miss_rate(128 << 10);
    let large = miss_rate(8 << 20);
    assert!(
        large < small,
        "8MB counter cache must miss less than 128KB ({small:.3} -> {large:.3})"
    );
}
