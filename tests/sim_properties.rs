//! Property-based tests over the simulator's internal invariants:
//! write-queue acceptance, device reservations, functional memory, and
//! the cache model — driven through the public crate APIs.

use nvmm::core::pmem::Pmem;
use nvmm::crypto::{Counter, EncryptionEngine};
use nvmm::sim::addr::{ByteAddr, CounterLineAddr, LineAddr, NvmmTarget};
use nvmm::sim::cache::SetAssocCache;
use nvmm::sim::config::{Design, SimConfig};
use nvmm::sim::device::{AccessKind, PcmDevice};
use nvmm::sim::wq::WriteQueues;
use nvmm::sim::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Plain-write acceptance never precedes submission and drains never
    /// precede acceptance, for arbitrary submission patterns.
    #[test]
    fn wq_acceptance_is_causal(
        submissions in proptest::collection::vec((0u64..64, 0u64..2000), 1..80),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let mut dev = PcmDevice::new(&cfg);
        let mut wq = WriteQueues::new(8, 4, 4, Time::from_ns(100));
        let mut t = Time::ZERO;
        for (line, gap_ns) in submissions {
            t += Time::from_ns(gap_ns);
            let r = wq.submit_plain(&mut dev, NvmmTarget::Data(LineAddr(line)), t);
            prop_assert!(r.accepted >= t, "accepted {} before submit {t}", r.accepted);
            prop_assert!(r.drained >= r.accepted, "drained before accepted");
        }
    }

    /// Counter-atomic pairs: readiness is causal, monotonic across
    /// consecutive pairs (the coordinator chain), and never precedes
    /// either half's queue acceptance window.
    #[test]
    fn ca_pair_readiness_is_monotonic(
        submissions in proptest::collection::vec((0u64..64, 0u64..3000), 1..60),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let mut dev = PcmDevice::new(&cfg);
        let mut wq = WriteQueues::new(16, 4, 4, Time::from_ns(100));
        let mut t = Time::ZERO;
        let mut last_ready = Time::ZERO;
        for (line, gap_ns) in submissions {
            t += Time::from_ns(gap_ns);
            let r = wq.submit_counter_atomic(
                &mut dev,
                NvmmTarget::Data(LineAddr(line)),
                NvmmTarget::Counter(CounterLineAddr(line / 8)),
                t,
            );
            prop_assert!(r.ready > t, "handshake takes time");
            prop_assert!(r.ready >= last_ready, "pair readiness must chain monotonically");
            prop_assert!(r.drained >= r.ready, "drains wait for ready bits");
            last_ready = r.ready;
        }
    }

    /// Device reservations on one bank never overlap and the bus spaces
    /// all bursts.
    #[test]
    fn device_reservations_serialize_per_bank(
        accesses in proptest::collection::vec((0u64..256, prop::bool::ANY, 0u64..500), 1..60),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let banks = cfg.banks;
        let mut dev = PcmDevice::new(&cfg);
        let mut per_bank: std::collections::HashMap<(usize, bool), Time> =
            std::collections::HashMap::new();
        let mut t = Time::ZERO;
        for (line, is_read, gap_ns) in accesses {
            t += Time::from_ns(gap_ns);
            let target = NvmmTarget::Data(LineAddr(line));
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            let sched = dev.schedule(target, kind, t);
            prop_assert!(sched.start >= t);
            prop_assert!(sched.done > sched.start);
            let key = (target.bank(banks), is_read);
            if let Some(&prev_done) = per_bank.get(&key) {
                prop_assert!(
                    sched.start >= prev_done,
                    "bank reservation overlap: start {} < previous done {}",
                    sched.start,
                    prev_done
                );
            }
            per_bank.insert(key, sched.done);
        }
    }

    /// Functional memory behaves like a flat byte array: random writes
    /// then reads agree with a reference model.
    #[test]
    fn pmem_matches_reference_byte_array(
        writes in proptest::collection::vec((0u64..4096, proptest::collection::vec(any::<u8>(), 1..40)), 1..40),
    ) {
        let mut pm = Pmem::for_core(0);
        let mut model = vec![0u8; 8192];
        for (off, bytes) in &writes {
            let off = (*off).min(8192 - bytes.len() as u64);
            pm.write(ByteAddr(off), bytes);
            model[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut got = vec![0u8; 8192];
        pm.peek(ByteAddr(0), &mut got);
        prop_assert_eq!(got, model);
    }

    /// The cache never exceeds its capacity and a just-inserted line is
    /// always resident.
    #[test]
    fn cache_capacity_and_residency(
        keys in proptest::collection::vec(0u64..10_000, 1..400),
        sets in 1usize..16,
        ways in 1usize..8,
    ) {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(sets, ways);
        for &k in &keys {
            c.insert(k, k * 2, k % 3 == 0);
            prop_assert_eq!(c.peek(&k), Some(&(k * 2)), "inserted line must be resident");
            prop_assert!(c.len() <= sets * ways, "cache exceeded capacity");
        }
    }

    /// Counter-mode encryption is a bijection per (address, counter):
    /// distinct plaintexts map to distinct ciphertexts and back.
    #[test]
    fn encryption_is_injective(
        addr in 0u64..1_000_000,
        ctr in 1u64..u64::MAX,
        a in proptest::array::uniform32(any::<u8>()),
        b in proptest::array::uniform32(any::<u8>()),
    ) {
        prop_assume!(a != b);
        let e = EncryptionEngine::new([3; 16]);
        let mut pa = [0u8; 64];
        let mut pb = [0u8; 64];
        pa[..32].copy_from_slice(&a);
        pb[..32].copy_from_slice(&b);
        let ca = e.encrypt_with(addr, &pa, Counter(ctr));
        let cb = e.encrypt_with(addr, &pb, Counter(ctr));
        prop_assert_ne!(ca, cb, "XOR with one pad is injective");
        prop_assert_eq!(e.decrypt(addr, &ca, Counter(ctr)), pa);
    }

    /// Pairing invariants under arbitrary interleavings of plain and
    /// counter-atomic submissions: occupancy never exceeds capacity in
    /// either queue, the ready-bit backlog never underflows (it decays
    /// to exactly zero at the quiesce instant), and readiness chains
    /// monotonically.
    #[test]
    fn wq_mixed_fill_drain_ready_invariants(
        submissions in proptest::collection::vec(
            (0u64..64, prop::bool::ANY, 0u64..500), 1..80),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let mut dev = PcmDevice::new(&cfg);
        let mut wq = WriteQueues::new(8, 4, 4, Time::from_ns(100));
        let mut t = Time::ZERO;
        let mut last_ready = Time::ZERO;
        for (line, counter_atomic, gap_ns) in submissions {
            t += Time::from_ns(gap_ns);
            let probe = if counter_atomic {
                let r = wq.submit_counter_atomic(
                    &mut dev,
                    NvmmTarget::Data(LineAddr(line)),
                    NvmmTarget::Counter(CounterLineAddr(line / 8)),
                    t,
                );
                prop_assert!(r.ready >= last_ready, "ready bits must chain");
                last_ready = r.ready;
                r.ready
            } else {
                wq.submit_plain(&mut dev, NvmmTarget::Data(LineAddr(line)), t).accepted
            };
            prop_assert!(
                wq.data_occupancy(probe) <= wq.data_capacity(),
                "data queue over capacity"
            );
            prop_assert!(
                wq.counter_occupancy(probe) <= wq.counter_capacity(),
                "counter queue over capacity"
            );
        }
        // The backlog decays to zero, never below: at quiesce the queues
        // are drained, the coordinator is free, and both stay that way.
        let q = wq.quiesce_time();
        prop_assert_eq!(wq.pairing_backlog(q), Time::ZERO);
        prop_assert_eq!(wq.data_occupancy(q), 0);
        prop_assert_eq!(wq.counter_occupancy(q), 0);
        prop_assert_eq!(wq.pairing_backlog(q + Time::from_ns(1)), Time::ZERO);
        prop_assert!(q >= last_ready, "quiesce cannot precede the last ready bit");
    }

    /// The ready-bit pairing rule, end to end: drive the controller with
    /// random counter-atomic write sequences, crash at random instants,
    /// and enumerate every legal image — no image may expose a data line
    /// whose counter half is missing (a half-persisted pair).
    #[test]
    fn fca_random_sequences_never_expose_half_pair(
        writes in proptest::collection::vec((0u64..24, 0u64..200), 1..24),
        crash_ns in 0u64..4000,
    ) {
        use nvmm::sim::controller::MemoryController;
        use nvmm::sim::crashmc::EnumOpts;
        use nvmm::sim::stats::Stats;
        let cfg = SimConfig::single_core(Design::Fca);
        let mut c = MemoryController::new(&cfg);
        let mut s = Stats::new(1);
        let mut t = Time::ZERO;
        let mut latest: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for (i, &(line, gap_ns)) in writes.iter().enumerate() {
            t += Time::from_ns(gap_ns);
            c.writeback(LineAddr(line), [i as u8; 64], false, t, &mut s);
            latest.insert(line, i as u8);
        }
        let set = c.crash_set(Time::from_ns(crash_ns));
        let en = set.enumerate(EnumOpts { max_images: 32, ..EnumOpts::default() });
        for (mask, img) in &en.images {
            prop_assert!(set.is_legal(mask));
            for &line in latest.keys() {
                let r = img.read_line(LineAddr(line), c.engine());
                prop_assert!(
                    r.is_clean() || matches!(r, nvmm::sim::nvmm::LineRead::Unwritten),
                    "mask {:?} at {crash_ns}ns exposed a half pair on line {line}: {r:?}",
                    mask.landed()
                );
            }
        }
    }

    /// Phoenix recovery is a fixpoint: reconstructing the integrity
    /// tree from an image's persisted counter lines, persisting that
    /// reconstruction back into the image (what recovery would do), and
    /// reconstructing again yields the identical tree — rerunning
    /// recovery after a crash *during* recovery converges to the same
    /// state.
    #[test]
    fn phoenix_reconstruction_is_a_fixpoint(
        lines in proptest::collection::vec(
            (0u64..64, proptest::array::uniform8(any::<u64>())), 1..24),
        levels in 1u32..4,
    ) {
        use nvmm::crypto::CounterLine;
        use nvmm::sim::integrity::reconstruct_tree;
        use nvmm::sim::nvmm::NvmmImage;
        let mut img = NvmmImage::new();
        for (cline, ctrs) in &lines {
            let mut cl = CounterLine::new();
            for (slot, &v) in ctrs.iter().enumerate() {
                cl.set(slot, Counter(v));
            }
            img.write_counter_line(CounterLineAddr(*cline), cl);
        }
        let first = reconstruct_tree(&img, levels);
        prop_assert!(!first.is_empty(), "non-empty leaf set must yield a tree");
        for &(node, digests) in &first {
            img.write_tree_node(node, digests);
        }
        let second = reconstruct_tree(&img, levels);
        prop_assert_eq!(&first, &second, "reconstruction must be a fixpoint");
        // And it is total over the leaves: every persisted counter line
        // has a level-1 parent in the reconstruction.
        for (cline, _) in img.counter_lines() {
            prop_assert!(
                first.iter().any(|(n, _)| n.level == 1 && n.index == cline.0 >> 3),
                "counter line {} has no reconstructed parent",
                cline.0
            );
        }
    }

    /// The SecPM packed metadata line is an exact bijection between the
    /// split (counter line, MAC line) layout and the colocated on-NVMM
    /// encoding, for arbitrary values including the reserved zero slots
    /// and the counter wraparound endpoints.
    #[test]
    fn packed_meta_line_roundtrips_exactly(
        ctrs in proptest::array::uniform8(any::<u64>()),
        macs in proptest::array::uniform8(any::<u64>()),
        wrap_slot in 0usize..8,
    ) {
        use nvmm::crypto::mac::{Mac, MacLine};
        use nvmm::crypto::{CounterLine, PackedMetaLine};
        let mut cl = CounterLine::new();
        let mut ml = MacLine::new();
        for slot in 0..8 {
            cl.set(slot, Counter(ctrs[slot]));
            ml.set(slot, Mac(macs[slot]));
        }
        // Pin one slot to the wrap boundary: bump(u64::MAX) skips the
        // reserved zero, and both endpoints must encode exactly.
        cl.set(wrap_slot, Counter(u64::MAX));
        let line = PackedMetaLine::from_parts(cl, ml);
        let back = PackedMetaLine::from_bytes(&line.to_bytes());
        prop_assert_eq!(back, line);
        prop_assert_eq!(back.counters, cl);
        prop_assert_eq!(back.macs, ml);
        prop_assert_eq!(back.get(wrap_slot).0, Counter(u64::MAX));
        let bumped = Counter(u64::MAX).bump();
        prop_assert!(!bumped.is_unwritten(), "wrap must skip the reserved zero");
    }

    /// Latency-histogram quantiles are monotone in the quantile for
    /// arbitrary sample streams: p50 ≤ p95 ≤ p99 ≤ p999 ≤ max, with
    /// the p100 endpoint exact, and every reported quantile is a value
    /// the histogram could actually have seen (never above the max).
    #[test]
    fn latency_hist_quantiles_are_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        use nvmm::sim::stats::LatencyHist;
        let mut h = LatencyHist::new();
        let mut max = 0u64;
        for &s in &samples {
            h.record(s);
            max = max.max(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), max);
        let qs = [0.5, 0.95, 0.99, 0.999, 1.0];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", vals);
        }
        prop_assert_eq!(vals[4], max, "p100 must be the exact maximum");
        for &v in &vals {
            prop_assert!(v <= max, "a quantile above the maximum is impossible");
        }
    }

    /// Bucket-boundary correctness of the log-linear histogram: a
    /// single recorded sample comes back (at any interior quantile) as
    /// its bucket floor — never above the sample, exact below 32, and
    /// within one 1/32 sub-bucket of it above. Merging two histograms
    /// is indistinguishable from recording the concatenated stream.
    #[test]
    fn latency_hist_buckets_bound_their_samples(
        v in any::<u64>(),
        left in proptest::collection::vec(0u64..100_000, 0..50),
        right in proptest::collection::vec(0u64..100_000, 0..50),
    ) {
        use nvmm::sim::stats::LatencyHist;
        let mut h = LatencyHist::new();
        h.record(v);
        let floor = h.quantile(0.5);
        prop_assert!(floor <= v, "bucket floor {floor} above its sample {v}");
        if v < 32 {
            prop_assert_eq!(floor, v, "small values must be exact");
        } else {
            // Log-linear: 32 sub-buckets per octave, so the floor is
            // within 2^(msb-5) of the sample.
            let width = 1u64 << (63 - v.leading_zeros() - 5);
            prop_assert!(v - floor < width, "{v} beyond its sub-bucket width {width}");
        }
        prop_assert_eq!(h.quantile(1.0), v);

        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        for &s in &left { a.record(s); both.record(s); }
        for &s in &right { b.record(s); both.record(s); }
        a.merge(&b);
        prop_assert_eq!(a.count(), both.count());
        prop_assert_eq!(a.max(), both.max());
        for q in [0.5, 0.95, 0.99, 0.999, 1.0] {
            prop_assert_eq!(a.quantile(q), both.quantile(q), "merge diverged at q={}", q);
        }
    }

    /// Replay determinism over arbitrary small workload shapes: two
    /// replays of the same trace agree on every statistic.
    #[test]
    fn replay_is_deterministic(seed in 0u64..500, ops in 2usize..6) {
        use nvmm::sim::system::{CrashSpec, System};
        use nvmm::workloads::{traces_for_cores, WorkloadKind, WorkloadSpec};
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(ops).with_seed(seed);
        let traces = traces_for_cores(&spec, 1);
        let run = |traces: Vec<nvmm::sim::Trace>| {
            let out = System::new(SimConfig::single_core(Design::Sca), traces)
                .run(CrashSpec::None);
            (out.stats.runtime, out.stats.bytes_written, out.stats.nvmm_reads,
             out.stats.counter_cache_hits)
        };
        prop_assert_eq!(run(traces.clone()), run(traces));
    }
}

#[test]
fn wq_occupancy_is_bounded_by_capacity() {
    // Deterministic corner: flood a tiny queue and check occupancy.
    let cfg = SimConfig::single_core(Design::Sca);
    let mut dev = PcmDevice::new(&cfg);
    let mut wq = WriteQueues::new(4, 2, 2, Time::from_ns(100));
    for i in 0..50u64 {
        // Distinct lines on purpose (no coalescing).
        let r = wq.submit_plain(&mut dev, NvmmTarget::Data(LineAddr(i * 97)), Time::ZERO);
        assert!(
            wq.data_occupancy(r.accepted) <= 4,
            "occupancy exceeded capacity"
        );
    }
}
