//! Property-based tests over the simulator's internal invariants:
//! write-queue acceptance, device reservations, functional memory, and
//! the cache model — driven through the public crate APIs.

use nvmm::core::pmem::Pmem;
use nvmm::crypto::{Counter, EncryptionEngine};
use nvmm::sim::addr::{ByteAddr, CounterLineAddr, LineAddr, NvmmTarget};
use nvmm::sim::cache::SetAssocCache;
use nvmm::sim::config::{Design, SimConfig};
use nvmm::sim::device::{AccessKind, PcmDevice};
use nvmm::sim::wq::WriteQueues;
use nvmm::sim::Time;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Plain-write acceptance never precedes submission and drains never
    /// precede acceptance, for arbitrary submission patterns.
    #[test]
    fn wq_acceptance_is_causal(
        submissions in proptest::collection::vec((0u64..64, 0u64..2000), 1..80),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let mut dev = PcmDevice::new(&cfg);
        let mut wq = WriteQueues::new(8, 4, Time::from_ns(100));
        let mut t = Time::ZERO;
        for (line, gap_ns) in submissions {
            t += Time::from_ns(gap_ns);
            let r = wq.submit_plain(&mut dev, NvmmTarget::Data(LineAddr(line)), t);
            prop_assert!(r.accepted >= t, "accepted {} before submit {t}", r.accepted);
            prop_assert!(r.drained >= r.accepted, "drained before accepted");
        }
    }

    /// Counter-atomic pairs: readiness is causal, monotonic across
    /// consecutive pairs (the coordinator chain), and never precedes
    /// either half's queue acceptance window.
    #[test]
    fn ca_pair_readiness_is_monotonic(
        submissions in proptest::collection::vec((0u64..64, 0u64..3000), 1..60),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let mut dev = PcmDevice::new(&cfg);
        let mut wq = WriteQueues::new(16, 4, Time::from_ns(100));
        let mut t = Time::ZERO;
        let mut last_ready = Time::ZERO;
        for (line, gap_ns) in submissions {
            t += Time::from_ns(gap_ns);
            let r = wq.submit_counter_atomic(
                &mut dev,
                NvmmTarget::Data(LineAddr(line)),
                NvmmTarget::Counter(CounterLineAddr(line / 8)),
                t,
            );
            prop_assert!(r.ready > t, "handshake takes time");
            prop_assert!(r.ready >= last_ready, "pair readiness must chain monotonically");
            prop_assert!(r.drained >= r.ready, "drains wait for ready bits");
            last_ready = r.ready;
        }
    }

    /// Device reservations on one bank never overlap and the bus spaces
    /// all bursts.
    #[test]
    fn device_reservations_serialize_per_bank(
        accesses in proptest::collection::vec((0u64..256, prop::bool::ANY, 0u64..500), 1..60),
    ) {
        let cfg = SimConfig::single_core(Design::Sca);
        let banks = cfg.banks;
        let mut dev = PcmDevice::new(&cfg);
        let mut per_bank: std::collections::HashMap<(usize, bool), Time> =
            std::collections::HashMap::new();
        let mut t = Time::ZERO;
        for (line, is_read, gap_ns) in accesses {
            t += Time::from_ns(gap_ns);
            let target = NvmmTarget::Data(LineAddr(line));
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            let sched = dev.schedule(target, kind, t);
            prop_assert!(sched.start >= t);
            prop_assert!(sched.done > sched.start);
            let key = (target.bank(banks), is_read);
            if let Some(&prev_done) = per_bank.get(&key) {
                prop_assert!(
                    sched.start >= prev_done,
                    "bank reservation overlap: start {} < previous done {}",
                    sched.start,
                    prev_done
                );
            }
            per_bank.insert(key, sched.done);
        }
    }

    /// Functional memory behaves like a flat byte array: random writes
    /// then reads agree with a reference model.
    #[test]
    fn pmem_matches_reference_byte_array(
        writes in proptest::collection::vec((0u64..4096, proptest::collection::vec(any::<u8>(), 1..40)), 1..40),
    ) {
        let mut pm = Pmem::for_core(0);
        let mut model = vec![0u8; 8192];
        for (off, bytes) in &writes {
            let off = (*off).min(8192 - bytes.len() as u64);
            pm.write(ByteAddr(off), bytes);
            model[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut got = vec![0u8; 8192];
        pm.peek(ByteAddr(0), &mut got);
        prop_assert_eq!(got, model);
    }

    /// The cache never exceeds its capacity and a just-inserted line is
    /// always resident.
    #[test]
    fn cache_capacity_and_residency(
        keys in proptest::collection::vec(0u64..10_000, 1..400),
        sets in 1usize..16,
        ways in 1usize..8,
    ) {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(sets, ways);
        for &k in &keys {
            c.insert(k, k * 2, k % 3 == 0);
            prop_assert_eq!(c.peek(&k), Some(&(k * 2)), "inserted line must be resident");
            prop_assert!(c.len() <= sets * ways, "cache exceeded capacity");
        }
    }

    /// Counter-mode encryption is a bijection per (address, counter):
    /// distinct plaintexts map to distinct ciphertexts and back.
    #[test]
    fn encryption_is_injective(
        addr in 0u64..1_000_000,
        ctr in 1u64..u64::MAX,
        a in proptest::array::uniform32(any::<u8>()),
        b in proptest::array::uniform32(any::<u8>()),
    ) {
        prop_assume!(a != b);
        let e = EncryptionEngine::new([3; 16]);
        let mut pa = [0u8; 64];
        let mut pb = [0u8; 64];
        pa[..32].copy_from_slice(&a);
        pb[..32].copy_from_slice(&b);
        let ca = e.encrypt_with(addr, &pa, Counter(ctr));
        let cb = e.encrypt_with(addr, &pb, Counter(ctr));
        prop_assert_ne!(ca, cb, "XOR with one pad is injective");
        prop_assert_eq!(e.decrypt(addr, &ca, Counter(ctr)), pa);
    }

    /// Replay determinism over arbitrary small workload shapes: two
    /// replays of the same trace agree on every statistic.
    #[test]
    fn replay_is_deterministic(seed in 0u64..500, ops in 2usize..6) {
        use nvmm::sim::system::{CrashSpec, System};
        use nvmm::workloads::{traces_for_cores, WorkloadKind, WorkloadSpec};
        let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(ops).with_seed(seed);
        let traces = traces_for_cores(&spec, 1);
        let run = |traces: Vec<nvmm::sim::Trace>| {
            let out = System::new(SimConfig::single_core(Design::Sca), traces)
                .run(CrashSpec::None);
            (out.stats.runtime, out.stats.bytes_written, out.stats.nvmm_reads,
             out.stats.counter_cache_hits)
        };
        prop_assert_eq!(run(traces.clone()), run(traces));
    }
}

#[test]
fn wq_occupancy_is_bounded_by_capacity() {
    // Deterministic corner: flood a tiny queue and check occupancy.
    let cfg = SimConfig::single_core(Design::Sca);
    let mut dev = PcmDevice::new(&cfg);
    let mut wq = WriteQueues::new(4, 2, Time::from_ns(100));
    for i in 0..50u64 {
        // Distinct lines on purpose (no coalescing).
        let r = wq.submit_plain(&mut dev, NvmmTarget::Data(LineAddr(i * 97)), Time::ZERO);
        assert!(
            wq.data_occupancy(r.accepted) <= 4,
            "occupancy exceeded capacity"
        );
    }
}
