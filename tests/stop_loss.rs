//! Osiris-lite stop-loss recovery: the follow-on direction this paper
//! opened (Osiris, MICRO'18). Instead of persisting counters strictly —
//! via counter-atomic pairs or `counter_cache_writeback` — the
//! controller bounds how far any counter may lag (`SimConfig::stop_loss`)
//! and post-crash recovery finds the true counter by searching at most
//! that many candidates, with ECC as the correctness oracle.
//!
//! The punchline: even the `UnsafeNoAtomicity` design — which ignores
//! every counter-atomicity primitive and fails the ordinary crash sweeps
//! on all five workloads — becomes fully crash-consistent once stop-loss
//! bounding and windowed recovery are enabled.

use nvmm::sim::config::{Design, SimConfig};
use nvmm::sim::system::CrashSpec;
use nvmm::workloads::{crash_check_cfg, execute, WorkloadKind, WorkloadSpec};

const WINDOW: u64 = 4;

fn stop_loss_cfg() -> SimConfig {
    let mut cfg = SimConfig::single_core(Design::UnsafeNoAtomicity);
    cfg.stop_loss = Some(WINDOW);
    cfg
}

#[test]
fn stop_loss_makes_the_unsafe_design_crash_safe() {
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::smoke(kind).with_ops(8);
        let ex = execute(&spec, 0, spec.ops);
        let total = ex.pm.trace().len() as u64;
        let start = ex.setup_events as u64;
        let step = ((total - start) / 25).max(1);
        let mut k = start;
        while k < total {
            crash_check_cfg(&spec, stop_loss_cfg(), CrashSpec::AfterEvent(k), WINDOW)
                .unwrap_or_else(|e| panic!("{kind}: crash after event {k}: {e}"));
            k += step;
        }
    }
}

#[test]
fn without_windowed_recovery_the_same_runs_still_fail() {
    // Stop-loss bounding alone is not enough: recovery must search the
    // window. With window = 0 the sweep must fail somewhere.
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(8);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let mut failed = false;
    for k in (ex.setup_events as u64..total).step_by(5) {
        if crash_check_cfg(&spec, stop_loss_cfg(), CrashSpec::AfterEvent(k), 0).is_err() {
            failed = true;
            break;
        }
    }
    assert!(
        failed,
        "bounded lag without candidate search must still garble"
    );
}

#[test]
fn too_small_a_window_fails() {
    // The lag bound is WINDOW; searching fewer candidates must miss some
    // counters. (A window of 1 can only repair a lag of exactly 1.)
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(8);
    let ex = execute(&spec, 0, spec.ops);
    let total = ex.pm.trace().len() as u64;
    let mut failed = false;
    for k in (ex.setup_events as u64..total).step_by(3) {
        if crash_check_cfg(&spec, stop_loss_cfg(), CrashSpec::AfterEvent(k), 1).is_err() {
            failed = true;
            break;
        }
    }
    assert!(
        failed,
        "a 1-candidate window cannot cover a lag bound of {WINDOW}"
    );
}

#[test]
fn stop_loss_pays_with_extra_counter_writes() {
    // The trade: stop-loss flushes counter lines every WINDOW bumps, so
    // it writes more counters than plain Unsafe but needs no software
    // primitives at all.
    use nvmm::sim::system::System;
    use nvmm::workloads::traces_for_cores;
    let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(10);
    let traces = traces_for_cores(&spec, 1);

    let plain = System::new(
        SimConfig::single_core(Design::UnsafeNoAtomicity),
        traces.clone(),
    )
    .run(CrashSpec::None);
    let stopped = System::new(stop_loss_cfg(), traces).run(CrashSpec::None);
    assert!(
        stopped.stats.nvmm_counter_writes > plain.stats.nvmm_counter_writes,
        "stop-loss must flush counters periodically ({} vs {})",
        stopped.stats.nvmm_counter_writes,
        plain.stats.nvmm_counter_writes
    );
}

#[test]
fn recovery_reports_how_many_counters_it_searched() {
    use nvmm::core::recovery::RecoveredMemory;
    use nvmm::sim::system::System;
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(8);
    let ex = execute(&spec, 0, spec.ops);
    let trace = ex.pm.trace().clone();
    let total = trace.len() as u64;
    let cfg = stop_loss_cfg();
    let key = cfg.key;
    // Crash late so plenty of lagging counters exist.
    let out = System::new(cfg, vec![trace]).run(CrashSpec::AfterEvent(total * 3 / 4));
    let mut mem = RecoveredMemory::new(out.image, key).with_recovery_window(WINDOW);
    let _ = spec.mechanism.recover(&mut mem, &ex.log);
    let committed = mem.read_u64(ex.ops_cell);
    ex.check_structure(&mut mem, committed)
        .expect("stop-loss recovery is consistent");
    assert!(
        mem.counters_recovered() > 0,
        "a late crash must leave some counters to the candidate search"
    );
}
