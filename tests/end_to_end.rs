//! End-to-end pipeline tests: functional execution → timing replay →
//! post-crash image → recovery, across crates.

use nvmm::core::pmem::{Pmem, RegionPlanner};
use nvmm::core::recovery::{recover_undo_log, RecoveredMemory};
use nvmm::core::undo::{Tx, UndoLog};
use nvmm::crypto::EncryptionEngine;
use nvmm::sim::config::{Design, SimConfig};
use nvmm::sim::system::{CrashSpec, System};
use nvmm::sim::LineRead;
use nvmm::workloads::{execute, traces_for_cores, WorkloadKind, WorkloadSpec};

#[test]
fn full_pipeline_persists_committed_state_for_all_designs() {
    // A two-transaction counter run replayed under every design that is
    // crash-consistent: the final value must always be recoverable.
    for design in [
        Design::NoEncryption,
        Design::Sca,
        Design::Fca,
        Design::CoLocated,
    ] {
        let mut pm = Pmem::for_core(0);
        let mut plan = RegionPlanner::new(pm.region());
        let log = UndoLog::new(plan.alloc_lines(64), 8, 64);
        let cell = plan.alloc_lines(1);
        log.format(&mut pm);
        for i in 0..2u64 {
            let mut tx = Tx::begin(&mut pm, &log, i);
            tx.log_region(cell, 8);
            tx.write_u64(cell, (i + 1) * 111);
            tx.commit();
        }
        let (trace, _) = pm.into_parts();
        let cfg = SimConfig::single_core(design);
        let key = cfg.key;
        let out = System::new(cfg, vec![trace]).run(CrashSpec::None);
        let mut mem = RecoveredMemory::new(out.image, key);
        let report = recover_undo_log(&mut mem, &log);
        assert!(report.reads_clean, "{design}: recovery reads must be clean");
        assert!(
            !report.rolled_back,
            "{design}: committed run must not roll back"
        );
        assert_eq!(
            mem.read_u64(cell),
            222,
            "{design}: final value must persist"
        );
    }
}

#[test]
fn nvmm_image_holds_real_ciphertext() {
    // The persisted bytes for encrypted designs must NOT be the
    // plaintext: this is real encryption, not a flag.
    let spec = WorkloadSpec::smoke(WorkloadKind::ArraySwap).with_ops(3);
    let ex = execute(&spec, 0, spec.ops);
    let (trace, functional_image) = ex.pm.into_parts();
    let cfg = SimConfig::single_core(Design::Sca);
    let key = cfg.key;
    let out = System::new(cfg, vec![trace]).run(CrashSpec::None);

    let engine = EncryptionEngine::new(key);
    let mut checked = 0;
    for line in out.image.data_line_addrs() {
        let Some(plain) = functional_image.get(&line) else {
            continue;
        };
        if plain.iter().all(|&b| b == 0) {
            continue;
        }
        let raw = out.image.raw_data(line).expect("line is resident");
        assert_ne!(
            &raw, plain,
            "stored bytes must be ciphertext, not plaintext"
        );
        if let LineRead::Clean(decrypted) = out.image.read_line(line, &engine) {
            assert_eq!(&decrypted, plain, "decryption must invert encryption");
            checked += 1;
        }
    }
    assert!(checked > 0, "at least one line must decrypt cleanly");
}

#[test]
fn multi_core_runs_are_deterministic() {
    let spec = WorkloadSpec::smoke(WorkloadKind::Queue).with_ops(10);
    let run = || {
        let cfg = SimConfig::table2(Design::Sca, 4);
        let traces = traces_for_cores(&spec, 4);
        let out = System::new(cfg, traces).run(CrashSpec::None);
        (
            out.stats.runtime,
            out.stats.bytes_written,
            out.stats.nvmm_reads,
        )
    };
    assert_eq!(
        run(),
        run(),
        "identical inputs must produce identical simulations"
    );
}

#[test]
fn multi_core_crash_recovers_every_core_region() {
    // Crash a 2-core run mid-flight; each core's log must independently
    // recover its region.
    let spec = WorkloadSpec::smoke(WorkloadKind::HashTable).with_ops(12);
    let cfg = SimConfig::table2(Design::Sca, 2);
    let key = cfg.key;
    let ex0 = execute(&spec, 0, spec.ops);
    let ex1 = execute(&spec, 1, spec.ops);
    let traces = vec![ex0.pm.trace().clone(), ex1.pm.trace().clone()];
    let out = System::new(cfg, traces).run(CrashSpec::AtTime(nvmm::sim::Time::from_ns(20_000)));
    assert!(out.crash_time.is_some());

    let mut mem = RecoveredMemory::new(out.image, key);
    for ex in [&ex0, &ex1] {
        let report = recover_undo_log(&mut mem, &ex.log);
        assert!(
            report.reads_clean,
            "per-core recovery must read clean lines"
        );
        let committed = mem.read_u64(ex.ops_cell);
        assert!(committed <= spec.ops as u64);
        ex.check_structure(&mut mem, committed)
            .expect("structure is consistent");
    }
}

#[test]
fn trace_replay_commits_match_functional_commits() {
    let spec = WorkloadSpec::smoke(WorkloadKind::RbTree).with_ops(9);
    let traces = traces_for_cores(&spec, 1);
    let expected = traces[0].tx_count();
    let out = System::new(SimConfig::single_core(Design::Ideal), traces).run(CrashSpec::None);
    assert_eq!(out.stats.transactions_committed, expected);
    assert_eq!(expected, 9);
}

#[test]
fn designs_agree_on_functional_outcome() {
    // Timing designs must never change *what* is computed, only *when*:
    // the recovered post-run state is identical across designs.
    let spec = WorkloadSpec::smoke(WorkloadKind::BTree).with_ops(6);
    let reference: Vec<u64> = {
        let ex = execute(&spec, 0, spec.ops);
        let mut pm = ex.pm;
        let cell = ex.ops_cell;
        vec![pm.read_u64(cell)]
    };
    for design in [
        Design::NoEncryption,
        Design::Sca,
        Design::Fca,
        Design::CoLocated,
    ] {
        let ex = execute(&spec, 0, spec.ops);
        let trace = ex.pm.trace().clone();
        let cfg = SimConfig::single_core(design);
        let key = cfg.key;
        let out = System::new(cfg, vec![trace]).run(CrashSpec::None);
        let mut mem = RecoveredMemory::new(out.image, key);
        let _ = recover_undo_log(&mut mem, &ex.log);
        assert_eq!(mem.read_u64(ex.ops_cell), reference[0], "{design}");
    }
}
