//! Cross-validation of the two logging mechanisms: random transactional
//! programs must produce byte-identical final states whether they run
//! under undo or redo logging — the mechanisms may only differ in *when*
//! a crash commits, never in *what* a complete run computes.

use nvmm::core::pmem::{Pmem, RegionPlanner};
use nvmm::core::txn::{Mechanism, Txn};
use nvmm::core::undo::UndoLog;
use nvmm::sim::addr::ByteAddr;
use proptest::prelude::*;

/// One step of a random transactional program over 16 u64 cells.
#[derive(Debug, Clone)]
enum Op {
    /// `cells[dst] = cells[src] + k`
    Add { src: usize, dst: usize, k: u64 },
    /// `swap(cells[a], cells[b])`
    Swap { a: usize, b: usize },
    /// `cells[dst] = k`
    Set { dst: usize, k: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 0usize..16, 0u64..1000).prop_map(|(src, dst, k)| Op::Add { src, dst, k }),
        (0usize..16, 0usize..16).prop_map(|(a, b)| Op::Swap { a, b }),
        (0usize..16, 0u64..1000).prop_map(|(dst, k)| Op::Set { dst, k }),
    ]
}

/// Runs `txs` (each a list of ops) under `mech`, one transaction per
/// list, returning the 16 final cell values.
fn run(txs: &[Vec<Op>], mech: Mechanism) -> Vec<u64> {
    let mut pm = Pmem::for_core(0);
    let mut plan = RegionPlanner::new(pm.region());
    let log = UndoLog::new(plan.alloc_lines(128), 24, 64);
    let cells = plan.alloc_lines(2); // 16 u64 = 128 B
    log.format(&mut pm);
    let cell = |i: usize| ByteAddr(cells.0 + i as u64 * 8);

    for (id, ops) in txs.iter().enumerate() {
        let mut tx = Txn::begin(&mut pm, &log, id as u64, mech);
        tx.log_region(cells, 128);
        for op in ops {
            match *op {
                Op::Add { src, dst, k } => {
                    let v = tx.read_u64(cell(src));
                    tx.write_u64(cell(dst), v.wrapping_add(k));
                }
                Op::Swap { a, b } => {
                    let va = tx.read_u64(cell(a));
                    let vb = tx.read_u64(cell(b));
                    tx.write_u64(cell(a), vb);
                    tx.write_u64(cell(b), va);
                }
                Op::Set { dst, k } => tx.write_u64(cell(dst), k),
            }
        }
        tx.commit();
    }
    (0..16).map(|i| pm.read_u64(cell(i))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Undo and redo agree on every random program.
    #[test]
    fn mechanisms_agree_on_random_programs(
        txs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..8),
            1..6,
        ),
    ) {
        let undo = run(&txs, Mechanism::UndoLog);
        let redo = run(&txs, Mechanism::RedoLog);
        prop_assert_eq!(undo, redo, "mechanisms diverged on {:?}", txs);
    }

    /// Reference-model check: both mechanisms also agree with a plain
    /// in-memory interpreter of the same program.
    #[test]
    fn mechanisms_agree_with_reference_interpreter(
        txs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..6),
            1..4,
        ),
    ) {
        let mut model = [0u64; 16];
        for ops in &txs {
            for op in ops {
                match *op {
                    Op::Add { src, dst, k } => model[dst] = model[src].wrapping_add(k),
                    Op::Swap { a, b } => model.swap(a, b),
                    Op::Set { dst, k } => model[dst] = k,
                }
            }
        }
        let undo = run(&txs, Mechanism::UndoLog);
        prop_assert_eq!(&undo[..], &model[..]);
    }
}

#[test]
fn aborted_transactions_differ_by_mechanism_in_cost_not_state() {
    // Abort (drop without commit): undo leaves an armed log (recovery
    // would roll back); redo leaves nothing. But neither may corrupt the
    // committed state visible afterwards.
    for mech in Mechanism::ALL {
        let mut pm = Pmem::for_core(0);
        let mut plan = RegionPlanner::new(pm.region());
        let log = UndoLog::new(plan.alloc_lines(128), 24, 64);
        let cells = plan.alloc_lines(2);
        log.format(&mut pm);

        let mut tx = Txn::begin(&mut pm, &log, 0, mech);
        tx.log_region(cells, 128);
        tx.write_u64(cells, 11);
        tx.commit();

        {
            let mut tx = Txn::begin(&mut pm, &log, 1, mech);
            tx.log_region(cells, 128);
            tx.write_u64(cells, 99);
            // dropped — aborted
        }
        match mech {
            // Undo mutates in place before commit; the abort is only
            // repaired by recovery (rollback).
            Mechanism::UndoLog => assert_eq!(pm.read_u64(cells), 99),
            // Redo defers everything: the abort leaves memory untouched.
            Mechanism::RedoLog => assert_eq!(pm.read_u64(cells), 11),
        }
    }
}
