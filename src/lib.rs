//! # nvmm — crash consistency for encrypted non-volatile main memory
//!
//! A from-scratch Rust reproduction of *Crash Consistency in Encrypted
//! Non-Volatile Main Memory Systems* (HPCA 2018): **counter-atomicity**
//! and **selective counter-atomicity** for NVMM systems that use
//! counter-mode memory encryption.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`crypto`] — AES-128, one-time pads, counters ([`nvmm_crypto`]).
//! * [`sim`] — the deterministic memory-system timing simulator:
//!   caches, counter cache, paired write queues with ready bits, banked
//!   PCM device, ADR crash semantics ([`nvmm_sim`]).
//! * [`core`] — the programming model: persistency primitives
//!   (`CounterAtomic` stores, `counter_cache_writeback`, `clwb`,
//!   `persist_barrier`), undo-log transactions, post-crash recovery
//!   ([`nvmm_core`]).
//! * [`workloads`] — the paper's five persistent data-structure
//!   workloads plus the crash-consistency checking harness
//!   ([`nvmm_workloads`]).
//!
//! # Quick start
//!
//! ```
//! use nvmm::sim::config::Design;
//! use nvmm::sim::system::CrashSpec;
//! use nvmm::workloads::{crash_check, WorkloadKind, WorkloadSpec};
//!
//! // Run a persistent hash table under selective counter-atomicity,
//! // pull the power mid-run, and verify recovery.
//! let spec = WorkloadSpec::smoke(WorkloadKind::HashTable);
//! let outcome = crash_check(&spec, Design::Sca, CrashSpec::AfterEvent(120)).unwrap();
//! println!("{} transactions survived the crash", outcome.committed);
//! ```
//!
//! See the `examples/` directory for runnable demonstrations and the
//! `nvmm-bench` crate for the binaries that regenerate every table and
//! figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nvmm_core as core;
pub use nvmm_crypto as crypto;
pub use nvmm_sim as sim;
pub use nvmm_workloads as workloads;
